"""Heartbeat-based failure detection.

Every node beats every peer each ``heartbeat_interval``; a peer silent
for ``suspect_timeout`` becomes *suspected*.  The detector is timeout-
based and therefore only eventually accurate: a slow or partitioned peer
can be suspected while alive (the classic trade-off; see docs/FAULTS.md
for what the recovery layer does — and refuses to do — about that).

The detector itself is a passive table: the recovery manager feeds it
``beat()`` on *any* inbound traffic from a peer (heartbeats merely
guarantee a minimum rate) and polls ``check()`` from its periodic timer.
Suspicion is reversible — traffic from a suspected peer un-suspects it,
which is what lets a falsely-accused node rejoin quietly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..core.messages import NodeId


class HeartbeatDetector:
    """Tracks last-heard times for a peer set.

    The set is fixed between membership changes; view installs call
    :meth:`add_peer` / :meth:`forget` to keep it aligned with the
    current view (see :mod:`repro.membership`).
    """

    def __init__(
        self, peers: Iterable[NodeId], timeout: float, now: float = 0.0
    ) -> None:
        #: Initializing ``last_seen`` to creation time grants every peer
        #: one full timeout of grace before it can be suspected.
        self._last_seen: Dict[NodeId, float] = {p: now for p in peers}
        self._timeout = timeout
        self._suspected: Set[NodeId] = set()

    def beat(self, peer: NodeId, now: float) -> bool:
        """Record life from *peer*; returns True iff it was un-suspected."""

        if peer not in self._last_seen:
            return False  # Not a tracked peer (e.g. ourselves).
        self._last_seen[peer] = now
        if peer in self._suspected:
            self._suspected.discard(peer)
            return True
        return False

    def add_peer(self, peer: NodeId, now: float) -> None:
        """Start tracking *peer* (a view join), with a fresh grace window.

        Idempotent: re-adding a tracked peer neither resets its last-seen
        time nor clears a standing suspicion.
        """

        if peer not in self._last_seen:
            self._last_seen[peer] = now

    def forget(self, peer: NodeId) -> None:
        """Stop tracking *peer* (a view removal).  Idempotent."""

        self._last_seen.pop(peer, None)
        self._suspected.discard(peer)

    def check(self, now: float) -> List[NodeId]:
        """Advance to *now*; returns peers that just became suspected."""

        fresh: List[NodeId] = []
        for peer, seen in self._last_seen.items():
            if peer in self._suspected:
                continue
            if now - seen >= self._timeout:
                self._suspected.add(peer)
                fresh.append(peer)
        return sorted(fresh)

    def is_suspected(self, peer: NodeId) -> bool:
        """Current verdict for *peer*."""

        return peer in self._suspected

    @property
    def suspected(self) -> Set[NodeId]:
        """Snapshot of all currently suspected peers."""

        return set(self._suspected)

    def live_peers(self) -> List[NodeId]:
        """Tracked peers not currently suspected, ascending."""

        return sorted(p for p in self._last_seen if p not in self._suspected)

    def last_seen(self, peer: NodeId) -> float:
        """When *peer* was last heard from (creation time if never).

        Used by the lease layer's quorum-contact horizon: a node that has
        heard from no majority for a full lease duration must assume its
        own leases expired and self-fence (see docs/FAULTS.md §4).
        """

        return self._last_seen.get(peer, 0.0)

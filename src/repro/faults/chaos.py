"""The chaos harness behind ``python -m repro chaos``.

:func:`run_chaos` runs a scripted multi-lock workload on a
:class:`~repro.faults.simcluster.ResilientSimCluster` under a
:class:`~repro.faults.plan.FaultPlan`, with the
:class:`~repro.verification.invariants.CompatibilityMonitor` attached
throughout, and distils the outcome into a JSON-friendly verdict:

* **Rule-1 safety** — no two incompatible modes were ever held
  concurrently, faults or not (the monitor raises the instant this
  breaks; the verdict records it instead of crashing the harness).
* **Eventual grant** — every request issued by a node that survived the
  run was granted by the end of the drain window.  Requests issued by
  nodes the plan crashed are tallied separately (``abandoned_by_crash``)
  — a dead requester has no liveness claim.  Likewise requests whose
  issuer left the cluster mid-run (``abandoned_by_departure``).
* **Membership convergence** — when the plan scripts churn (joins,
  drains, decommissions), all live members must agree on the view epoch
  and member list at the end of the drain window; the verdict's
  ``membership`` section carries the event log, join settle latencies
  and drain latencies.

Everything is seed-deterministic: the workload, the latency stream and
the fault stream each derive from the run seed, so a failing verdict is
replayable bit-for-bit with the same CLI arguments.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Union

from ..core.modes import LockMode
from ..errors import InvariantViolation, SimulationError
from ..obs.collect import RunObserver
from ..obs.live import (  # noqa: F401  (constants re-exported for compat)
    BLANK_REJOIN_GAP,
    BLANK_REJOIN_RULES,
    audit_view,
    classify_crash_findings,
)
from ..obs.sink import ObsSink
from ..sim.engine import Process, Timeout
from ..sim.rng import derive_rng
from ..verification.invariants import CompatibilityMonitor
from .plan import DRAIN, JOIN, FaultPlan, MembershipEvent, named_plan
from .recovery import RecoveryConfig
from .simcluster import ResilientSimCluster

#: Modes the scripted workload draws from (upgrade flows are exercised by
#: dedicated tests; the chaos workload sticks to plain acquires).
WORKLOAD_MODES = (LockMode.IR, LockMode.R, LockMode.IW, LockMode.W)

#: Extra simulated time after the issue window for recovery to converge
#: (covers suspect timeout + probe timeout + several retry backoffs).
DEFAULT_GRACE = 15.0

#: Ring-buffer caps applied to the chaos harness's observer so nightly
#: sweeps stay memory-bounded: retained series windows per metric and
#: retained request spans (run-level totals stay exact — see
#: :class:`repro.obs.series.WindowedCounter`).
CHAOS_OBS_MAX_BUCKETS = 4096
CHAOS_OBS_MAX_SPANS = 65536


@dataclasses.dataclass
class ChaosVerdict:
    """Outcome of one chaos run."""

    data: Dict[str, object]

    @property
    def ok(self) -> bool:
        """True iff safety held and liveness converged."""

        return bool(self.data.get("ok"))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the verdict for the CLI."""

        return json.dumps(self.data, indent=indent, sort_keys=True)


def run_chaos(
    plan: Union[str, FaultPlan] = "smoke",
    seed: int = 0,
    nodes: int = 5,
    duration: float = 30.0,
    locks: int = 3,
    grace: float = DEFAULT_GRACE,
    config: Optional[RecoveryConfig] = None,
    obs: Optional[ObsSink] = None,
    durable: bool = False,
    persistence=None,
    reclaim: bool = False,
    flight_dir: Optional[str] = None,
) -> ChaosVerdict:
    """Run one chaos scenario and return its verdict.

    *plan* is a :class:`FaultPlan` or the name of a canned one (seeded
    with *seed*).  *duration* bounds the issue window; the simulation
    then drains for *grace* more seconds so in-flight recovery finishes.

    With ``durable=True`` every node journals its protocol state through
    :mod:`repro.persist` (*persistence* supplies the backend; default an
    in-memory one) and restarted nodes replay snapshot + WAL instead of
    rejoining blank.  Durability removes the blank-rejoin excuse: crash
    findings that a volatile run classifies as the expected
    :data:`BLANK_REJOIN_GAP` become hard failures.

    With ``reclaim=True`` (durable runs only) a restarted node's
    surviving application sessions re-assert their restored holds under
    fresh leases instead of disowning them — see
    :mod:`repro.services.sessions`.

    With *flight_dir* set, every node records its inputs into a
    :class:`~repro.obs.flightrec.FlightRecorder` ring buffer; if the
    verdict fails (``ok=false``) or the post-drain audit finds
    violations, all ring buffers are dumped into that directory for
    ``python -m repro replay`` (the verdict's ``"flight"`` section names
    the file).
    """

    if isinstance(plan, str):
        plan = named_plan(plan, seed)
    if persistence is not None:
        durable = True
    elif durable:
        from ..persist import MemoryPersistence

        persistence = MemoryPersistence()
    monitor = CompatibilityMonitor()
    if isinstance(obs, RunObserver):
        # Spans/series should be stamped in simulated time, not wall time.
        sim_clock_pending = obs
    else:
        sim_clock_pending = None
    cluster = ResilientSimCluster(
        num_nodes=nodes,
        plan=plan,
        seed=seed,
        monitor=monitor,
        config=config if config is not None else RecoveryConfig(),
        obs=obs,
        persistence=persistence,
        reclaim=reclaim,
        flight={} if flight_dir is not None else None,
    )
    sim = cluster.sim
    if sim_clock_pending is not None:
        sim_clock_pending.bind_clock(lambda: sim.now)
    #: One record per issued request; mutated by the workload bodies.
    records: List[Dict[str, object]] = []
    releases = [0]

    def workload(node: int):
        rng = derive_rng(seed, "chaos", node)
        client = cluster.client(node)
        while sim.now < duration:
            if cluster.is_crashed(node):
                return
            lock_id = f"lock-{rng.randrange(locks)}"
            mode = WORKLOAD_MODES[rng.randrange(len(WORKLOAD_MODES))]
            record = {"node": node, "lock": lock_id, "mode": str(mode),
                      "granted": False, "issued_at": round(sim.now, 6)}
            records.append(record)
            try:
                event = client.acquire(lock_id, mode)
            except SimulationError:
                return  # Crashed under our feet.
            yield event  # Never fires if the node crashes while waiting.
            record["granted"] = True
            record["granted_at"] = round(sim.now, 6)
            yield Timeout(sim, rng.uniform(0.05, 0.30))
            if cluster.is_crashed(node):
                return  # Crashed while holding; the monitor was told.
            client.release(lock_id, mode)
            releases[0] += 1
            yield Timeout(sim, rng.uniform(0.05, 0.25))

    processes = [Process(sim, workload(n)) for n in range(nodes)]

    # Scripted membership churn: joins boot a fresh node (and put it to
    # work), drains and decommissions remove one.  A churn step that is
    # impossible when its moment arrives (e.g. draining a node the fault
    # stream crashed first) is recorded, not fatal — the plan scripts
    # intent, the run decides feasibility.
    joined_nodes: List[int] = []
    churn_errors: List[str] = []

    def _apply_churn(event: MembershipEvent) -> None:
        try:
            if event.action == JOIN:
                node = cluster.join_node()
                joined_nodes.append(node)
                processes.append(Process(sim, workload(node)))
            elif event.action == DRAIN:
                cluster.drain_node(event.node, successor=event.successor)
            else:  # DECOMMISSION
                if not cluster.is_crashed(event.node):
                    cluster.crash(event.node)
                cluster.decommission_node(event.node)
        except SimulationError as exc:
            churn_errors.append(f"{event.action}@{event.at}: {exc}")

    for churn_event in plan.churn:
        sim.schedule(
            churn_event.at, lambda e=churn_event: _apply_churn(e)
        )

    violation: Optional[str] = None
    try:
        sim.run(until=duration + grace)
    except InvariantViolation as exc:
        violation = str(exc)
    process_errors = [
        f"{type(p.error).__name__}: {p.error}"
        for p in processes
        if p.error is not None
    ]

    issued = len(records)
    granted = sum(1 for r in records if r["granted"])
    latencies = sorted(
        float(r["granted_at"]) - float(r["issued_at"])  # type: ignore[arg-type]
        for r in records
        if r["granted"]
    )
    ungranted = [r for r in records if not r["granted"]]
    # A request is abandoned when its waiter died in a crash: the node is
    # still down, or it crashed at any point after the request was issued
    # (restarts don't resurrect the waiting process — with durability the
    # rejoin explicitly disowns the restored pending request, since its
    # application context died with the old incarnation).
    crash_times: Dict[int, List[float]] = {}
    for crash in cluster.crash_log:
        crash_times.setdefault(int(crash["node"]), []).append(
            float(crash["at"])
        )

    def _abandoned(record: Dict[str, object]) -> bool:
        node = int(record["node"])
        if cluster.is_crashed(node):
            return True
        issued_at = float(record["issued_at"])  # type: ignore[arg-type]
        return any(t >= issued_at for t in crash_times.get(node, ()))

    abandoned = [r for r in ungranted if _abandoned(r)]
    # A lease-fenced node (quorum-silent past the lease duration, e.g.
    # the minority side of an unhealed partition) abandons its pending
    # requests at the fence and rejects new acquires: those waiters have
    # no liveness claim either — the majority's progress does.
    fence_times = {
        n: m.fenced_at
        for n, m in cluster.managers.items()
        if m.fenced_at is not None
    }
    remaining = [r for r in ungranted if not _abandoned(r)]
    abandoned_by_expiry = [
        r for r in remaining if int(r["node"]) in fence_times
    ]
    remaining = [r for r in remaining if int(r["node"]) not in fence_times]
    # A node that left the cluster (drained or decommissioned) takes its
    # never-granted requests with it: the waiter process died with the
    # departure, so those carry no liveness claim either.
    departed_nodes = {
        int(e["node"])
        for e in cluster.membership_log
        if e["event"] in ("drained", "decommissioned")
    }
    departed_nodes.update(
        n
        for n, m in cluster.managers.items()
        if m.departing or m.has_left
    )
    abandoned_by_departure = [
        r for r in remaining if int(r["node"]) in departed_nodes
    ]
    outstanding = [
        r for r in remaining if int(r["node"]) not in departed_nodes
    ]
    eventual_grant = violation is None and not outstanding

    # Post-drain cluster audit: the run is quiescent now (nothing more
    # will be injected), so every surviving disagreement is structural.
    view = cluster.cluster_view()
    audit = audit_view(
        view,
        quiescent=True,
        mean_grant_latency=(
            sum(latencies) / len(latencies) if latencies else None
        ),
    )
    crashed_any = bool(cluster.crash_log)
    audit_findings, expected_findings = classify_crash_findings(
        audit.findings, crashed_any, durable=durable
    )
    audit_healthy = not any(
        f["severity"] == "violation" for f in audit_findings
    )

    membership_info = _membership_stats(
        cluster, joined_nodes, churn_errors
    )
    membership_ok = True
    if plan.churn:
        membership_ok = (
            bool(membership_info["epoch_agreement"])
            and bool(membership_info["membership_agreement"])
            and not churn_errors
        )

    ok = (
        violation is None
        and eventual_grant
        and not process_errors
        and audit_healthy
        and membership_ok
    )

    flight_info: Optional[Dict[str, object]] = None
    if cluster.flight is not None:
        flight_info = {
            "recorded": True,
            "last_seq": {
                str(n): rec.last_seq
                for n, rec in sorted(cluster.flight.items())
            },
        }
        if not ok or audit_findings:
            import os

            from ..obs.flightrec import write_dump

            os.makedirs(flight_dir, exist_ok=True)
            dump_path = os.path.join(
                flight_dir, f"{plan.name}-seed{seed}.flight"
            )
            write_dump(
                dump_path,
                cluster.flight,
                meta={
                    "plan": plan.name,
                    "seed": seed,
                    "nodes": nodes,
                    "durable": durable,
                    "ok": ok,
                },
            )
            flight_info["dump"] = dump_path

    injector = cluster.network.injector
    faults: Dict[str, object] = (
        dict(injector.counters()) if injector is not None else {}
    )
    faults["crashes"] = list(cluster.crash_log)
    faults["messages_sent"] = cluster.network.messages_sent
    faults["messages_dropped"] = cluster.network.messages_dropped

    data: Dict[str, object] = {
        "plan": plan.name,
        "seed": seed,
        "nodes": nodes,
        "locks": locks,
        "duration": duration,
        "grace": grace,
        "sim_time": round(sim.now, 6),
        "durable": durable,
        "ok": ok,
        "requests": {
            "issued": issued,
            "granted": granted,
            "abandoned_by_crash": len(abandoned),
            "abandoned_by_expiry": len(abandoned_by_expiry),
            "abandoned_by_departure": len(abandoned_by_departure),
            "outstanding": len(outstanding),
        },
        "latency": {
            "mean": round(sum(latencies) / len(latencies), 6)
            if latencies else None,
            "p95": round(latencies[int(0.95 * (len(latencies) - 1))], 6)
            if latencies else None,
            "max": round(latencies[-1], 6) if latencies else None,
        },
        "releases": releases[0],
        "faults": faults,
        "recovery": cluster.recovery_stats(),
        "leases": _lease_stats(cluster, fence_times),
        "invariants": {
            "rule1_violations": 0 if violation is None else 1,
            "violation": violation,
            "eventual_grant": eventual_grant,
        },
        "cluster_audit": {
            "healthy": audit_healthy,
            "quiescent": True,
            "locks_checked": audit.locks_checked,
            "nodes_checked": audit.nodes_checked,
            "findings": audit_findings,
            "expected_findings": expected_findings,
            "known_gaps": sorted(
                {str(f["expected"]) for f in expected_findings}
            ),
        },
    }
    if plan.churn or cluster.membership_log:
        data["membership"] = membership_info
    if flight_info is not None:
        data["flight"] = flight_info
    if durable:
        data["durability"] = {
            "backend": persistence.backend,
            "reclaim": reclaim,
            "restarts": list(cluster.durability_log),
            "wal": persistence.stats(),
        }
    if process_errors:
        data["process_errors"] = process_errors
    if outstanding:
        data["outstanding_requests"] = outstanding[:10]
    return ChaosVerdict(data=data)


def _membership_stats(
    cluster: ResilientSimCluster,
    joined_nodes: List[int],
    churn_errors: List[str],
) -> Dict[str, object]:
    """Distil the membership layer's outcome for the verdict.

    Agreement is judged over the *live* members only: departed nodes are
    silenced and crashed-but-not-decommissioned nodes legitimately hold
    a stale view until they restart or are excised.
    """

    live = cluster.live_nodes()
    epochs = {n: cluster.managers[n].view_epoch for n in live}
    views = {n: tuple(cluster.managers[n].membership) for n in live}
    join_settle: List[Dict[str, object]] = []
    drain_begin: Dict[int, float] = {}
    drain_latency: List[Dict[str, object]] = []
    for entry in cluster.membership_log:
        node = int(entry["node"])  # type: ignore[arg-type]
        at = float(entry["at"])  # type: ignore[arg-type]
        if entry["event"] == "join":
            # Settled when the joiner installs its first real view that
            # contains it (the bootstrap guess is epoch-less, so any
            # recorded install counts).
            latency: Optional[float] = None
            manager = cluster.managers.get(node)
            if manager is not None:
                for install in manager.view_installs:
                    if node in install["members"]:
                        latency = round(float(install["at"]) - at, 6)
                        break
            join_settle.append({"node": node, "settle_latency": latency})
        elif entry["event"] == "drain-begin":
            drain_begin[node] = at
        elif entry["event"] == "drained":
            started = drain_begin.get(node)
            drain_latency.append(
                {
                    "node": node,
                    "drain_latency": (
                        round(at - started, 6)
                        if started is not None
                        else None
                    ),
                }
            )
    managers = cluster.managers.values()
    info: Dict[str, object] = {
        "events": list(cluster.membership_log),
        "joined_nodes": list(joined_nodes),
        "view_epochs": {str(n): e for n, e in sorted(epochs.items())},
        "epoch_agreement": len(set(epochs.values())) <= 1,
        "membership_agreement": len(set(views.values())) <= 1,
        "join_settle": join_settle,
        "drain_latency": drain_latency,
        "views_proposed": sum(m.views_proposed for m in managers),
        "handoffs_accepted": sum(m.handoffs_accepted for m in managers),
        "children_adopted": sum(m.children_adopted for m in managers),
    }
    if churn_errors:
        info["churn_errors"] = list(churn_errors)
    return info


def _lease_stats(
    cluster: ResilientSimCluster, fence_times: Dict[int, float]
) -> Dict[str, object]:
    """Aggregate the lease layer's counters for the verdict."""

    managers = cluster.managers.values()
    latencies = [
        lat for m in managers for lat in m.revoke_latencies
    ]
    return {
        "renewals_sent": sum(m.lease_renewals_sent for m in managers),
        "renewals_received": sum(
            m.lease_renewals_received for m in managers
        ),
        "revoked": sum(m.leases_revoked for m in managers),
        "revoke_latency_mean": (
            round(sum(latencies) / len(latencies), 6) if latencies else None
        ),
        "fenced_nodes": sorted(fence_times),
        "fenced_at": {
            str(n): round(t, 6) for n, t in sorted(fence_times.items())
        },
        "holds_reclaimed": sum(m.holds_reclaimed for m in managers),
        "sessions_gced": sum(m.sessions_gced for m in managers),
    }

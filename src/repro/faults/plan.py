"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` is a pure description: a tuple of match-and-act
:class:`FaultRule` entries (drop / duplicate / delay / reorder), a tuple
of :class:`Partition` windows and a tuple of :class:`CrashEvent`
schedules.  Plans carry their own seed; the stateful decision engine
(:class:`FaultInjector`) draws every probabilistic choice from a private
``random.Random(seed)`` stream, so the injected fault sequence is a
deterministic function of the plan and the message sequence — completely
independent of the latency RNG, which keeps fault-free runs bit-identical
to runs of the pre-fault code.

Rules match on the *protocol* message type: session wrappers added by the
reliable channel are transparently unwrapped, so ``message_types=
frozenset({"grant"})`` hits a grant whether it travels raw (simulator
without recovery) or inside a session frame (resilient clusters).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.messages import MESSAGE_TYPE_LABELS, NodeId

#: Legacy predicate signature of ``Network(loss_filter=...)``.
LossFilter = Callable[[NodeId, NodeId, object], bool]

#: Actions a rule can take on a matched message.
DROP, DUPLICATE, DELAY, REORDER = "drop", "duplicate", "delay", "reorder"

_ACTIONS = frozenset({DROP, DUPLICATE, DELAY, REORDER})


def fault_label(message: object) -> str:
    """Protocol-level label of *message*, looking through session frames.

    Falls back to the lower-cased class name (minus a ``Message`` suffix)
    for types outside the core Figure-7 label table, so rules can target
    recovery traffic (``"heartbeat"``, ``"session-ack"``, ...) too.
    """

    payload = getattr(message, "payload", None)
    if payload is not None:
        return fault_label(payload)
    label = MESSAGE_TYPE_LABELS.get(type(message))
    if label is not None:
        return label
    name = type(message).__name__
    if name.endswith("Message"):
        name = name[: -len("Message")]
    return name.lower()


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One match-and-act entry of a fault plan.

    A message matches when every given constraint holds: its protocol
    label is in ``message_types`` (``None`` = any), its sender/dest are
    in the respective sets (``None`` = any), the current time lies in
    ``[after, until)``, the rule has fired fewer than ``max_count``
    times, and the optional ``predicate`` returns true.  A matching
    message then suffers ``action`` with probability ``probability``.
    """

    action: str
    probability: float = 1.0
    message_types: Optional[frozenset] = None
    senders: Optional[frozenset] = None
    dests: Optional[frozenset] = None
    after: float = 0.0
    until: float = math.inf
    max_count: Optional[int] = None
    #: Extra latency in seconds (``delay`` action only).
    delay: float = 0.25
    #: Escape hatch for the deprecated ``loss_filter`` shim.
    predicate: Optional[LossFilter] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def matches(
        self, now: float, sender: NodeId, dest: NodeId, message: object
    ) -> bool:
        """Whether this rule's constraints accept the message (ignoring
        probability and ``max_count``, which the injector owns)."""

        if not self.after <= now < self.until:
            return False
        if self.senders is not None and sender not in self.senders:
            return False
        if self.dests is not None and dest not in self.dests:
            return False
        if (
            self.message_types is not None
            and fault_label(message) not in self.message_types
        ):
            return False
        if self.predicate is not None and not self.predicate(
            sender, dest, message
        ):
            return False
        return True


@dataclasses.dataclass(frozen=True)
class Partition:
    """A bidirectional network partition during ``[start, end)``.

    Messages between ``side_a`` and ``side_b`` (either direction) are
    dropped while the partition is in force; it heals at ``end``.
    """

    side_a: frozenset
    side_b: frozenset
    start: float = 0.0
    end: float = math.inf

    def severs(self, now: float, sender: NodeId, dest: NodeId) -> bool:
        """True iff this partition drops a *sender* → *dest* message now."""

        if not self.start <= now < self.end:
            return False
        return (sender in self.side_a and dest in self.side_b) or (
            sender in self.side_b and dest in self.side_a
        )


@dataclasses.dataclass(frozen=True)
class CrashEvent:
    """Crash node ``node`` at time ``at``; restart it at ``restart_at``.

    ``restart_at=None`` means the node stays down.  A crash is a full
    stop: the node loses all volatile protocol state, and a restarted
    node rejoins with a fresh lock space (see ``docs/FAULTS.md`` for the
    rejoin semantics and their limits).
    """

    node: NodeId
    at: float
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ValueError("restart_at must be after the crash time")


#: Actions a membership (churn) event can take.
JOIN, DRAIN, DECOMMISSION = "join", "drain", "decommission"

_CHURN_ACTIONS = frozenset({JOIN, DRAIN, DECOMMISSION})


@dataclasses.dataclass(frozen=True)
class MembershipEvent:
    """One scheduled membership change (see :mod:`repro.membership`).

    ``join`` boots a brand-new node at ``at`` (``node`` must be ``None``:
    the harness assigns the next free id and starts a workload on it).
    ``drain`` gracefully drains ``node`` — holds released, token custody
    handed off, copyset children migrated — and removes it from the
    view.  ``decommission`` crashes ``node`` at ``at`` and force-excises
    it through the suspect/lease machinery (so its leases are revoked
    and fence floors bumped).  ``successor`` optionally pins the drain
    handoff target.
    """

    action: str
    at: float
    node: Optional[NodeId] = None
    successor: Optional[NodeId] = None

    def __post_init__(self) -> None:
        if self.action not in _CHURN_ACTIONS:
            raise ValueError(f"unknown membership action {self.action!r}")
        if self.action == JOIN and self.node is not None:
            raise ValueError("join events get their node id from the harness")
        if self.action != JOIN and self.node is None:
            raise ValueError(f"{self.action} events need a target node")
        if self.successor is not None and self.action != DRAIN:
            raise ValueError("only drain events take a successor")


@dataclasses.dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one message."""

    drop: bool = False
    #: Total deliveries (1 = normal, 2+ = duplicated).
    copies: int = 1
    #: Extra latency added before (each copy of) the delivery.
    extra_delay: float = 0.0
    #: Skip the per-pair FIFO floor for this message (sim network only).
    reorder: bool = False


#: The no-fault decision, shared to avoid per-message allocation.
NO_FAULT = FaultDecision()


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A complete, immutable chaos specification."""

    rules: Tuple[FaultRule, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    crashes: Tuple[CrashEvent, ...] = ()
    #: Scheduled membership changes (join / drain / decommission).
    churn: Tuple[MembershipEvent, ...] = ()
    seed: int = 0
    name: str = "custom"

    def is_empty(self) -> bool:
        """True iff the plan can never perturb anything."""

        return not (self.rules or self.partitions or self.crashes or self.churn)


class FaultInjector:
    """The stateful decision engine bound to one plan.

    One injector serves one network/transport instance; it owns the
    plan's RNG stream, the per-rule firing counts and the aggregate
    fault counters reported in chaos verdicts.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed ^ 0xFA017)
        self._fired: List[int] = [0] * len(plan.rules)
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.partitioned = 0

    def decide(
        self, now: float, sender: NodeId, dest: NodeId, message: object
    ) -> FaultDecision:
        """Decide the fate of one message about to cross the fabric."""

        for partition in self.plan.partitions:
            if partition.severs(now, sender, dest):
                self.partitioned += 1
                self.dropped += 1
                return FaultDecision(drop=True)
        if not self.plan.rules:
            return NO_FAULT
        drop = False
        copies = 1
        extra_delay = 0.0
        reorder = False
        for index, rule in enumerate(self.plan.rules):
            if rule.max_count is not None and self._fired[index] >= rule.max_count:
                continue
            if not rule.matches(now, sender, dest, message):
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            self._fired[index] += 1
            if rule.action == DROP:
                drop = True
            elif rule.action == DUPLICATE:
                copies += 1
            elif rule.action == DELAY:
                extra_delay += rule.delay
            elif rule.action == REORDER:
                reorder = True
        if drop:
            self.dropped += 1
            return FaultDecision(drop=True)
        if copies == 1 and extra_delay == 0.0 and not reorder:
            return NO_FAULT
        if copies > 1:
            self.duplicated += copies - 1
        if extra_delay > 0.0:
            self.delayed += 1
        if reorder:
            self.reordered += 1
        return FaultDecision(
            copies=copies, extra_delay=extra_delay, reorder=reorder
        )

    def counters(self) -> Dict[str, int]:
        """Aggregate fault counts for verdicts and tests."""

        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "reordered": self.reordered,
            "partitioned": self.partitioned,
        }


def plan_from_loss_filter(loss_filter: LossFilter) -> FaultPlan:
    """Wrap a legacy ``Network(loss_filter=...)`` predicate in a plan.

    The shim behind the deprecated constructor argument: the predicate
    becomes a single unconditional drop rule, so old call sites keep
    working on top of the fault layer.
    """

    return FaultPlan(
        rules=(FaultRule(action=DROP, predicate=loss_filter),),
        name="loss-filter-shim",
    )


#: Protocol (non-recovery) message labels, for rules that must not touch
#: heartbeats or session acks.
PROTOCOL_LABELS = frozenset({"request", "grant", "token", "release", "freeze"})


def _smoke_plan(seed: int) -> FaultPlan:
    """The CI smoke: light loss + duplication + jitter, then a crash.

    Tuned so a 30-second run exercises every recovery path (channel
    retransmission, dedup, suspicion, token regeneration) while still
    converging well inside the harness's drain grace.
    """

    return FaultPlan(
        rules=(
            FaultRule(action=DROP, probability=0.02, until=20.0),
            FaultRule(action=DUPLICATE, probability=0.02, until=20.0),
            FaultRule(action=DELAY, probability=0.05, delay=0.2, until=20.0),
        ),
        crashes=(CrashEvent(node=0, at=10.0),),
        seed=seed,
        name="smoke",
    )


def _named(name: str, builder: Callable[[int], FaultPlan]):
    return name, builder


#: Registry of canned plans for the chaos CLI (name -> builder(seed)).
NAMED_PLANS: Dict[str, Callable[[int], FaultPlan]] = dict(
    (
        _named("none", lambda seed: FaultPlan(seed=seed, name="none")),
        _named("smoke", _smoke_plan),
        _named(
            "drop1",
            lambda seed: FaultPlan(
                rules=(FaultRule(action=DROP, probability=0.01),),
                seed=seed,
                name="drop1",
            ),
        ),
        _named(
            "dup1",
            lambda seed: FaultPlan(
                rules=(FaultRule(action=DUPLICATE, probability=0.01),),
                seed=seed,
                name="dup1",
            ),
        ),
        _named(
            "jitter",
            lambda seed: FaultPlan(
                rules=(
                    FaultRule(action=DELAY, probability=0.10, delay=0.3),
                    FaultRule(action=REORDER, probability=0.05),
                ),
                seed=seed,
                name="jitter",
            ),
        ),
        _named(
            # The hardest plan: crash the initial token home mid-run and
            # bring it back.  With durability the restarted node rejoins
            # with its pre-crash locks (and its token, iff the epoch is
            # still current); without it the restart is blank and the
            # audit surfaces the classified blank-rejoin gap.
            "token-crash",
            lambda seed: FaultPlan(
                crashes=(CrashEvent(node=0, at=5.0, restart_at=12.0),),
                seed=seed,
                name="token-crash",
            ),
        ),
        _named(
            # Membership churn, gentle: two staggered joins under load.
            # Each joiner must bootstrap from a state-transfer snapshot,
            # settle the quorum-gated view change and start taking
            # grants without ever opening a Rule-1 window.
            "rolling-join",
            lambda seed: FaultPlan(
                churn=(
                    MembershipEvent(action=JOIN, at=5.0),
                    MembershipEvent(action=JOIN, at=12.0),
                ),
                seed=seed,
                name="rolling-join",
            ),
        ),
        _named(
            # Membership churn, graceful: drain node 1 mid-load (holds
            # released, token custody handed off, children migrated),
            # then a join backfills capacity.  No waiter may be stranded
            # by the departure.
            "graceful-drain",
            lambda seed: FaultPlan(
                churn=(
                    MembershipEvent(action=DRAIN, at=6.0, node=1),
                    MembershipEvent(action=JOIN, at=14.0),
                ),
                seed=seed,
                name="graceful-drain",
            ),
        ),
        _named(
            # Membership churn, forced: node 2 dies and is excised via
            # decommission (lease revocation + fence-floor bumps), and a
            # replacement joins.  The hardest path: the dead node's
            # state is reconstructed, not handed off.
            "kill-and-replace",
            lambda seed: FaultPlan(
                churn=(
                    MembershipEvent(action=DECOMMISSION, at=7.0, node=2),
                    MembershipEvent(action=JOIN, at=15.0),
                ),
                seed=seed,
                name="kill-and-replace",
            ),
        ),
        _named(
            "partition",
            lambda seed: FaultPlan(
                partitions=(
                    Partition(
                        side_a=frozenset({0}),
                        side_b=frozenset({1, 2, 3, 4, 5, 6, 7}),
                        start=5.0,
                        end=10.0,
                    ),
                ),
                seed=seed,
                name="partition",
            ),
        ),
        _named(
            # One node is cut off from everyone else and the partition
            # NEVER heals: the lease layer's defining scenario.  The
            # minority holder must self-fence (quorum silence past the
            # lease duration), the majority revokes its leases one
            # revoke-margin later, and waiting majority requests are
            # then granted — all without a Rule-1 window.
            "minority-partition",
            lambda seed: FaultPlan(
                partitions=(
                    Partition(
                        side_a=frozenset({4}),
                        side_b=frozenset({0, 1, 2, 3, 5, 6, 7}),
                        start=5.0,
                        end=math.inf,
                    ),
                ),
                seed=seed,
                name="minority-partition",
            ),
        ),
    )
)


def named_plan(name: str, seed: int = 0) -> FaultPlan:
    """Build the canned plan *name* with *seed* (see :data:`NAMED_PLANS`)."""

    try:
        builder = NAMED_PLANS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_PLANS))
        raise ValueError(f"unknown fault plan {name!r} (known: {known})")
    return builder(seed)

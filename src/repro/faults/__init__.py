"""Fault injection and failure recovery for the lock service.

The paper's protocol assumes reliable FIFO delivery and a never-failing
token node; fault tolerance is explicitly deferred to future work.  This
package supplies the missing subsystem in three layers:

* **Injection** (:mod:`repro.faults.plan`): a declarative,
  seed-deterministic :class:`FaultPlan` — drop / duplicate / delay /
  reorder messages by type, peer and time window, bidirectional
  partitions that heal, and node crash + restart events — with adapters
  for the simulated :class:`~repro.sim.network.Network` and the
  threaded/TCP transports (:class:`~repro.faults.runtime.FaultyTransport`).

* **Detection & recovery** (:mod:`repro.faults.recovery`): per-pair
  reliable sessions (sequence numbers, cumulative acks, retransmission
  with capped exponential backoff — :mod:`repro.faults.channel`),
  heartbeat failure detection (:mod:`repro.faults.detector`), and an
  epoch-numbered token-regeneration protocol so a crashed token node no
  longer wedges the lock space.  The protocol-level idempotence hooks
  live in the automaton behind ``ProtocolOptions(recovery=True)``.

* **Chaos harness** (:mod:`repro.faults.chaos`): ``python -m repro
  chaos`` runs scripted workloads under a fault plan with the
  verification monitors attached and emits a JSON verdict.

See ``docs/FAULTS.md`` for the fault model and the epoch argument.
"""

from .chaos import ChaosVerdict, run_chaos
from .detector import HeartbeatDetector
from .plan import (
    CrashEvent,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultRule,
    Partition,
    named_plan,
    plan_from_loss_filter,
    NAMED_PLANS,
)
from .recovery import RecoveryConfig, RecoveryManager
from .runtime import FaultyTransport, ResilientThreadedCluster
from .simcluster import ResilientSimCluster

__all__ = [
    "ChaosVerdict",
    "CrashEvent",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultyTransport",
    "HeartbeatDetector",
    "NAMED_PLANS",
    "Partition",
    "RecoveryConfig",
    "RecoveryManager",
    "ResilientSimCluster",
    "ResilientThreadedCluster",
    "named_plan",
    "plan_from_loss_filter",
    "run_chaos",
]

"""Pluggable per-node durability backends.

A *node store* holds one node's write-ahead log plus its latest compacted
snapshot.  Two backends share the frame codec of :mod:`repro.persist.wal`:

* :class:`MemoryNodeStore` — frames kept as byte strings in process
  memory.  The store object outlives the simulated node's crash, which is
  exactly the durability model the sim engine needs: deterministic, no
  I/O, no wall-clock, and byte-identical to what the file backend would
  have written.
* :class:`FileNodeStore` — one directory per node (``wal.log`` +
  ``snapshot.json``) with a configurable fsync policy for the threaded /
  TCP runtimes.  Snapshots are written atomically (temp file + fsync +
  rename) so a crash mid-snapshot can never destroy the previous one.

The :class:`MemoryPersistence` / :class:`FilePersistence` factories hand
out one store per node id and aggregate write statistics across them.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional, Tuple

from ..core.messages import NodeId
from ..errors import ConfigurationError
from .wal import ScanReport, encode_frame, scan_frames

#: fsync after every append: maximal durability, one fsync per record.
FSYNC_ALWAYS = "always"
#: fsync every ``batch_size`` appends (and on snapshot/close): the
#: default trade-off — a crash loses at most one batch of records, which
#: the epoch-fencing rejoin reconciliation absorbs (docs/PERSISTENCE.md).
FSYNC_BATCH = "batch"
#: Never fsync explicitly (tests / throwaway runs).
FSYNC_NEVER = "never"

_FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_NEVER)

#: Loaded store content: (snapshot payload or None, WAL records, scan).
LoadResult = Tuple[Optional[Dict[str, object]], List[Dict[str, object]], ScanReport]


class MemoryNodeStore:
    """In-memory WAL + snapshot for one simulated node."""

    def __init__(self) -> None:
        self._frames: List[bytes] = []
        self._snapshot: Optional[bytes] = None
        self.appends = 0
        self.snapshots = 0
        self.bytes_written = 0
        #: Snapshot payloads that failed to parse on load.
        self.snapshot_corrupt = 0

    def append(self, record: Dict[str, object]) -> None:
        """Append one WAL record (framed exactly like the file backend)."""

        frame = encode_frame(record)
        self._frames.append(frame)
        self.appends += 1
        self.bytes_written += len(frame)

    def write_snapshot(self, payload: Dict[str, object]) -> None:
        """Replace the compacted snapshot atomically."""

        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._snapshot = blob
        self.snapshots += 1
        self.bytes_written += len(blob)

    def reset_log(self) -> None:
        """Drop every WAL frame (called right after a snapshot)."""

        self._frames.clear()

    def load(self) -> LoadResult:
        """Decode the snapshot and replayable WAL records."""

        snapshot: Optional[Dict[str, object]] = None
        if self._snapshot is not None:
            try:
                decoded = json.loads(self._snapshot.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                decoded = None
            if isinstance(decoded, dict):
                snapshot = decoded
            else:
                self.snapshot_corrupt += 1
        records, _, report = scan_frames(b"".join(self._frames))
        return snapshot, records, report

    def sync(self) -> None:
        """No-op: memory is as durable as this backend gets."""

    def close(self) -> None:
        """No-op: the store keeps its content for the next incarnation."""

    # Test hook: raw byte access, so torn-tail/corruption tests can
    # damage the log the same way for both backends.
    @property
    def log_bytes(self) -> bytes:
        return b"".join(self._frames)

    @log_bytes.setter
    def log_bytes(self, blob: bytes) -> None:
        self._frames = [blob] if blob else []


class FileNodeStore:
    """File-backed WAL + snapshot for one node (threaded/TCP runtimes)."""

    WAL_NAME = "wal.log"
    SNAPSHOT_NAME = "snapshot.json"

    def __init__(
        self,
        directory: str,
        fsync: str = FSYNC_BATCH,
        batch_size: int = 32,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync policy must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        self.directory = directory
        self.fsync = fsync
        self.batch_size = batch_size
        os.makedirs(directory, exist_ok=True)
        self.wal_path = os.path.join(directory, self.WAL_NAME)
        self.snapshot_path = os.path.join(directory, self.SNAPSHOT_NAME)
        self._mutex = threading.Lock()
        self._file = None
        self._unsynced = 0
        self.appends = 0
        self.snapshots = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.snapshot_corrupt = 0

    def _ensure_open(self):
        if self._file is None or self._file.closed:
            self._file = open(self.wal_path, "ab")
        return self._file

    def _fsync_file(self, handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())
        self.fsyncs += 1
        self._unsynced = 0

    def append(self, record: Dict[str, object]) -> None:
        frame = encode_frame(record)
        with self._mutex:
            handle = self._ensure_open()
            handle.write(frame)
            handle.flush()
            self.appends += 1
            self.bytes_written += len(frame)
            if self.fsync == FSYNC_ALWAYS:
                self._fsync_file(handle)
            elif self.fsync == FSYNC_BATCH:
                self._unsynced += 1
                if self._unsynced >= self.batch_size:
                    self._fsync_file(handle)

    def write_snapshot(self, payload: Dict[str, object]) -> None:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        tmp_path = self.snapshot_path + ".tmp"
        with self._mutex:
            with open(tmp_path, "wb") as handle:
                handle.write(blob)
                handle.flush()
                if self.fsync != FSYNC_NEVER:
                    os.fsync(handle.fileno())
            os.replace(tmp_path, self.snapshot_path)
            self.snapshots += 1
            self.bytes_written += len(blob)

    def reset_log(self) -> None:
        with self._mutex:
            handle = self._ensure_open()
            handle.truncate(0)
            handle.seek(0)
            if self.fsync != FSYNC_NEVER:
                self._fsync_file(handle)

    def load(self) -> LoadResult:
        with self._mutex:
            if self._file is not None and not self._file.closed:
                self._file.flush()
            snapshot: Optional[Dict[str, object]] = None
            if os.path.exists(self.snapshot_path):
                try:
                    with open(self.snapshot_path, "rb") as handle:
                        decoded = json.loads(handle.read().decode("utf-8"))
                except (OSError, UnicodeDecodeError, ValueError):
                    decoded = None
                if isinstance(decoded, dict):
                    snapshot = decoded
                else:
                    self.snapshot_corrupt += 1
            blob = b""
            if os.path.exists(self.wal_path):
                with open(self.wal_path, "rb") as handle:
                    blob = handle.read()
            records, good_end, report = scan_frames(blob)
            if report.torn_bytes and good_end < len(blob):
                # Repair the torn tail so the next append starts at a
                # clean frame boundary instead of extending garbage.
                if self._file is not None and not self._file.closed:
                    self._file.close()
                    self._file = None
                with open(self.wal_path, "r+b") as handle:
                    handle.truncate(good_end)
            return snapshot, records, report

    def sync(self) -> None:
        with self._mutex:
            if self._file is not None and not self._file.closed:
                self._fsync_file(self._file)

    def close(self) -> None:
        with self._mutex:
            if self._file is not None and not self._file.closed:
                self._file.flush()
                if self.fsync != FSYNC_NEVER:
                    os.fsync(self._file.fileno())
                    self.fsyncs += 1
                self._file.close()
            self._file = None
            self._unsynced = 0


class _PersistenceBase:
    """Shared store-cache + statistics plumbing of both factories."""

    def __init__(self) -> None:
        self._stores: Dict[NodeId, object] = {}

    def _create(self, node_id: NodeId):
        raise NotImplementedError

    def store_for(self, node_id: NodeId):
        """Return (creating on first use) node *node_id*'s store.

        The same store object is handed out across that node's crash /
        restart cycles — it *is* the durable medium.
        """

        store = self._stores.get(node_id)
        if store is None:
            store = self._stores[node_id] = self._create(node_id)
        return store

    def stats(self) -> Dict[str, int]:
        """Aggregate write statistics across every node store."""

        totals = {"appends": 0, "snapshots": 0, "bytes_written": 0}
        for store in self._stores.values():
            totals["appends"] += store.appends  # type: ignore[attr-defined]
            totals["snapshots"] += store.snapshots  # type: ignore[attr-defined]
            totals["bytes_written"] += store.bytes_written  # type: ignore[attr-defined]
        return totals

    def close(self) -> None:
        for store in self._stores.values():
            store.close()  # type: ignore[attr-defined]


class MemoryPersistence(_PersistenceBase):
    """Deterministic in-memory durability for the sim engine."""

    backend = "memory"

    def _create(self, node_id: NodeId) -> MemoryNodeStore:
        return MemoryNodeStore()


class FilePersistence(_PersistenceBase):
    """File-backed durability rooted at *root* (one subdir per node)."""

    backend = "file"

    def __init__(
        self,
        root: str,
        fsync: str = FSYNC_BATCH,
        batch_size: int = 32,
    ) -> None:
        super().__init__()
        self.root = root
        self.fsync = fsync
        self.batch_size = batch_size

    def _create(self, node_id: NodeId) -> FileNodeStore:
        directory = os.path.join(self.root, f"node-{node_id}")
        return FileNodeStore(
            directory, fsync=self.fsync, batch_size=self.batch_size
        )

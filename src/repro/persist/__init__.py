"""Per-node durability: write-ahead log + compacting snapshots.

``repro.persist`` gives each node a crash-surviving record of its
protocol state so a restarted node rejoins *with* its locks instead of
blank.  See ``docs/PERSISTENCE.md`` for the on-disk format, fsync
policies, and how recovery reconciles with epoch fencing.
"""

from .codec import request_from_payload, request_to_payload
from .journal import (
    DEFAULT_COMPACT_EVERY,
    VIEW_JOURNAL_KEY,
    NodeJournal,
    recover_node_state,
)
from .store import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_NEVER,
    FileNodeStore,
    FilePersistence,
    MemoryNodeStore,
    MemoryPersistence,
)
from .wal import MAX_RECORD_BYTES, ScanReport, encode_frame, scan_frames

__all__ = [
    "DEFAULT_COMPACT_EVERY",
    "FSYNC_ALWAYS",
    "FSYNC_BATCH",
    "FSYNC_NEVER",
    "FileNodeStore",
    "FilePersistence",
    "MAX_RECORD_BYTES",
    "MemoryNodeStore",
    "MemoryPersistence",
    "NodeJournal",
    "ScanReport",
    "VIEW_JOURNAL_KEY",
    "encode_frame",
    "recover_node_state",
    "request_from_payload",
    "request_to_payload",
    "scan_frames",
]

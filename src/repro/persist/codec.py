"""JSON codecs for protocol objects that ride in WAL records.

Only :class:`~repro.core.messages.RequestMessage` needs a codec of its
own: queued and pending requests are the one piece of automaton state
the read-only ``snapshot()`` view deliberately reduces (to origin/mode
pairs), while recovery must replay them verbatim — same request ids,
upgrade flags and priorities — so a restarted token node can keep serving
the exact queue it promised FIFO order to.

Trace contexts are *not* persisted: a restarted process has a fresh
tracer, and replayed sends re-enter causal chains through the recovery
manager's annotated ``replay`` scope instead.
"""

from __future__ import annotations

from typing import Dict

from ..core.messages import RequestId, RequestMessage
from ..core.modes import LockMode


def request_to_payload(msg: RequestMessage) -> Dict[str, object]:
    """Serialize one request message into a JSON-safe dict."""

    return {
        "lock": msg.lock_id,
        "sender": msg.sender,
        "origin": msg.origin,
        "mode": str(msg.mode),
        "id": [
            msg.request_id.timestamp,
            msg.request_id.origin,
            msg.request_id.serial,
        ],
        "upgrade": msg.upgrade,
        "priority": msg.priority,
    }


def request_from_payload(payload: Dict[str, object]) -> RequestMessage:
    """Rebuild a request message from :func:`request_to_payload` output."""

    timestamp, origin, serial = payload["id"]  # type: ignore[misc]
    return RequestMessage(
        lock_id=str(payload["lock"]),
        sender=int(payload["sender"]),  # type: ignore[arg-type]
        origin=int(payload["origin"]),  # type: ignore[arg-type]
        mode=LockMode(str(payload["mode"])),
        request_id=RequestId(
            timestamp=int(timestamp),
            origin=int(origin),
            serial=int(serial),
        ),
        upgrade=bool(payload.get("upgrade", False)),
        priority=int(payload.get("priority", 0)),  # type: ignore[arg-type]
    )

"""The per-node durability journal: WAL appends + compacting snapshots.

A :class:`NodeJournal` is the object a
:class:`~repro.core.lockspace.LockSpace` exposes to its automata as the
``persist`` hook.  Every state-changing protocol event calls
``journal.record(automaton, kind)``; the journal serializes the
automaton's **full** current per-lock state (``persisted_state()``, a
superset of the monitoring ``snapshot()``) into one WAL record.  Replay
is therefore last-record-wins per lock — no event-by-event state machine
to keep in sync with the protocol, and the snapshot layer and the WAL
layer can cross-check each other on recovery.

Every ``compact_every`` appends the journal folds the whole lockspace
into one snapshot and truncates the log, bounding both replay time and
disk usage.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.messages import LockId, NodeId
from ..services.sessions import SESSIONS_JOURNAL_KEY

#: WAL records between automatic compactions.  Count-based (never
#: time-based) so simulated runs stay deterministic.
DEFAULT_COMPACT_EVERY = 64

#: Reserved journal key the installed membership view is recorded under
#: (see :mod:`repro.membership`); popped out of the recovered state
#: before per-lock rejoin, like the session payload.
VIEW_JOURNAL_KEY = "@view"


class NodeJournal:
    """Durability hook for one node's lockspace.

    Parameters
    ----------
    store:
        The node's backend store (see :mod:`repro.persist.store`).
    node_id:
        The hosting node (labels observability events).
    boot:
        The node's current boot incarnation, stamped into snapshots.
    compact_every:
        WAL records between automatic compactions.
    obs:
        Optional observability sink; appends and snapshots surface as
        ``persist_event`` counter samples.
    """

    def __init__(
        self,
        store,
        node_id: NodeId,
        boot: int = 0,
        compact_every: int = DEFAULT_COMPACT_EVERY,
        obs=None,
    ) -> None:
        self.store = store
        self.node_id = node_id
        self.boot = boot
        self.compact_every = compact_every
        self.obs = obs
        self._lockspace = None
        self._since_compact = 0
        self.appends = 0
        self.compactions = 0
        #: Optional zero-arg callable returning the hosting node's
        #: session payload (see :mod:`repro.services.sessions`); wired by
        #: the recovery manager so compaction folds the session table
        #: into the snapshot instead of losing it with the truncated WAL.
        self.session_source = None
        #: Same, for the installed membership view (a dict with
        #: ``epoch`` / ``members`` / ``departed``); also re-recorded on
        #: every install via :meth:`record_view`.
        self.view_source = None

    def attach(self, lockspace) -> None:
        """Become *lockspace*'s persist hook (existing automata included)."""

        self._lockspace = lockspace
        lockspace.persist = self
        for automaton in lockspace.automata():
            automaton.persist = self

    # -- the hook the automata call ------------------------------------

    def record(self, automaton, kind: str) -> None:
        """Append *automaton*'s current full state under event *kind*."""

        self.store.append(
            {
                "v": 1,
                "lock": automaton.lock_id,
                "kind": kind,
                "state": automaton.persisted_state(),
            }
        )
        self.appends += 1
        self._since_compact += 1
        if self.obs is not None:
            self.obs.persist_event(self.node_id, kind)
        if self._since_compact >= self.compact_every:
            self.compact()

    def record_sessions(self, payload: Dict[str, object]) -> None:
        """Append the node's session table under the reserved key.

        Sessions ride the same WAL as lock state (one record, last wins
        on replay) so a recovered node sees lock holds and their owning
        sessions from one consistent medium; recovery pops the reserved
        key out of the replayed state before per-lock rejoin.
        """

        self.store.append(
            {
                "v": 1,
                "lock": SESSIONS_JOURNAL_KEY,
                "kind": "sessions",
                "state": payload,
            }
        )
        self.appends += 1
        self._since_compact += 1
        if self.obs is not None:
            self.obs.persist_event(self.node_id, "sessions")
        if self._since_compact >= self.compact_every:
            self.compact()

    def record_view(self, payload: Dict[str, object]) -> None:
        """Append the installed membership view under the reserved key.

        A restart must rejoin the *current* view, not the bootstrap one:
        quorum sizes, the departed set and every peer list derive from
        it.  One record per install, last wins on replay.
        """

        self.store.append(
            {
                "v": 1,
                "lock": VIEW_JOURNAL_KEY,
                "kind": "view",
                "state": payload,
            }
        )
        self.appends += 1
        self._since_compact += 1
        if self.obs is not None:
            self.obs.persist_event(self.node_id, "view")
        if self._since_compact >= self.compact_every:
            self.compact()

    # -- compaction -----------------------------------------------------

    def compact(self) -> None:
        """Fold the whole lockspace into one snapshot, truncate the WAL."""

        if self._lockspace is None:
            return
        locks = {
            automaton.lock_id: automaton.persisted_state()
            for automaton in self._lockspace.automata()
        }
        if self.session_source is not None:
            locks[SESSIONS_JOURNAL_KEY] = self.session_source()
        if self.view_source is not None:
            view = self.view_source()
            if view is not None:
                locks[VIEW_JOURNAL_KEY] = view
        self.store.write_snapshot(
            {"v": 1, "boot": self.boot, "locks": locks}
        )
        self.store.reset_log()
        self._since_compact = 0
        self.compactions += 1
        if self.obs is not None:
            self.obs.persist_event(self.node_id, "snapshot")

    # -- lifecycle ------------------------------------------------------

    def sync(self) -> None:
        """Force buffered appends to the durable medium."""

        self.store.sync()

    def close(self) -> None:
        """Flush and release backend resources (crash / shutdown)."""

        self.store.close()

    def stats(self) -> Dict[str, int]:
        """Write-side statistics (folded into health snapshots)."""

        return {
            "appends": self.appends,
            "compactions": self.compactions,
            "store_appends": self.store.appends,
            "store_snapshots": self.store.snapshots,
            "store_bytes": self.store.bytes_written,
        }


def recover_node_state(
    store,
) -> Tuple[Dict[LockId, Dict[str, object]], Dict[str, object]]:
    """Replay *store*'s snapshot + WAL into per-lock state payloads.

    Returns ``(state, report)``: *state* maps each lock id to the last
    persisted ``persisted_state()`` payload (snapshot first, then WAL
    records replayed last-record-wins on top); *report* summarizes what
    the scan found (replay counts, skipped corruption, torn bytes) for
    the chaos verdict's durability section.
    """

    snapshot, records, scan = store.load()
    state: Dict[LockId, Dict[str, object]] = {}
    snapshot_boot = 0
    snapshot_loaded = False
    if snapshot is not None:
        locks = snapshot.get("locks")
        if isinstance(locks, dict):
            snapshot_loaded = True
            snapshot_boot = int(snapshot.get("boot", 0) or 0)
            for lock_id, payload in locks.items():
                if isinstance(payload, dict):
                    state[str(lock_id)] = payload
    replayed = 0
    malformed = 0
    for record in records:
        lock_id = record.get("lock")
        payload = record.get("state")
        if not isinstance(lock_id, str) or not isinstance(payload, dict):
            malformed += 1
            continue
        state[lock_id] = payload
        replayed += 1
    report: Dict[str, object] = {
        "snapshot_loaded": snapshot_loaded,
        "snapshot_boot": snapshot_boot,
        "records_replayed": replayed,
        "records_malformed": malformed,
        "corrupt_skipped": scan.corrupt_skipped,
        "torn_bytes": scan.torn_bytes,
        "locks": len(state),
    }
    return state, report

"""CRC-framed record encoding for the write-ahead log.

Every WAL record is one JSON document wrapped in a fixed binary frame::

    +----------------+----------------+------------------------+
    | length (u32 BE)| CRC32 (u32 BE) | payload (UTF-8 JSON)   |
    +----------------+----------------+------------------------+

The frame makes two failure modes distinguishable on replay:

* **Torn tail** — the process died mid-append (or the file was
  truncated): the last frame's header or payload is incomplete, or the
  length field itself is garbage.  Everything from the last intact frame
  onward is discarded (and the file is truncated back to it, so later
  appends start from a clean boundary).
* **Corrupt record** — the framing is intact but the payload's CRC (or
  its JSON) does not check out: the single record is *skipped and
  counted*, and replay continues with the next frame.

Both backends (:class:`~repro.persist.store.MemoryNodeStore` and
:class:`~repro.persist.store.FileNodeStore`) use this exact codec, so the
simulator exercises the same bytes the file-backed runtime writes.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import zlib
from typing import Dict, List, Tuple

#: Frame header: payload length, then CRC32 of the payload bytes.
_HEADER = struct.Struct(">II")

#: Upper bound on one record's payload; a length field above this is
#: treated as framing damage (torn tail), not as a real record.
MAX_RECORD_BYTES = 1 << 24


def encode_frame(record: Dict[str, object]) -> bytes:
    """Serialize one JSON-safe *record* into a framed byte string."""

    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(
            f"WAL record of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte frame limit"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclasses.dataclass
class ScanReport:
    """Outcome of scanning one log blob (see :func:`scan_frames`)."""

    #: Records decoded successfully.
    records: int = 0
    #: Intact frames whose CRC or JSON failed: skipped, replay continued.
    corrupt_skipped: int = 0
    #: Bytes discarded at the tail (incomplete/unframeable suffix).
    torn_bytes: int = 0

    def to_payload(self) -> Dict[str, int]:
        """JSON-safe dict view (folded into recovery reports)."""

        return {
            "records": self.records,
            "corrupt_skipped": self.corrupt_skipped,
            "torn_bytes": self.torn_bytes,
        }


def scan_frames(blob: bytes) -> Tuple[List[Dict[str, object]], int, ScanReport]:
    """Decode every intact frame in *blob*.

    Returns ``(records, good_end, report)`` where *good_end* is the byte
    offset of the last well-framed position — the caller truncates its
    log there so the torn suffix (if any) never corrupts later appends.
    """

    records: List[Dict[str, object]] = []
    report = ScanReport()
    offset = 0
    good_end = 0
    total = len(blob)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(blob, offset)
        start = offset + _HEADER.size
        end = start + length
        if length > MAX_RECORD_BYTES or end > total:
            break  # Torn tail: incomplete (or mis-framed) final frame.
        payload = blob[start:end]
        offset = end
        good_end = end
        if zlib.crc32(payload) != crc:
            report.corrupt_skipped += 1
            continue
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            record = None
        if not isinstance(record, dict):
            report.corrupt_skipped += 1
            continue
        records.append(record)
        report.records += 1
    report.torn_bytes = total - good_end
    return records, good_end, report

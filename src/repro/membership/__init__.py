"""Dynamic membership: online join / graceful leave / decommission.

The paper assumes a fixed server group; this package removes that
assumption.  It defines the epoch-numbered :class:`MembershipView`, the
view-change wire messages, and (together with the drivers inside
:class:`repro.faults.recovery.RecoveryManager` and the cluster
harnesses) lets nodes be added and retired at runtime on all three
protocols without violating Rule 1 or losing token custody.  See
docs/MEMBERSHIP.md for the protocol description.
"""

from .messages import (
    MEMBERSHIP_TYPES,
    ChildMigrate,
    HandoffMessage,
    JoinRequest,
    StateTransfer,
    ViewAck,
    ViewInstall,
    ViewProposal,
)
from .view import MembershipView

__all__ = [
    "MEMBERSHIP_TYPES",
    "ChildMigrate",
    "HandoffMessage",
    "JoinRequest",
    "MembershipView",
    "StateTransfer",
    "ViewAck",
    "ViewInstall",
    "ViewProposal",
]

"""Epoch-numbered membership views.

A :class:`MembershipView` is the cluster's agreed answer to "who is a
member right now".  Views are totally ordered by their epoch: a node
adopts any view with a higher epoch than the one it has installed and
ignores everything else, which makes view installation idempotent and
safe to re-broadcast (the anti-entropy path piggybacks on heartbeats).

Views change through the same two-phase, quorum-gated pattern the token
regeneration protocol uses (docs/FAULTS.md §"token regeneration"): a
proposer picks ``epoch = installed + 1``, collects acks from a majority
of the *current* view's members, and only then broadcasts the install.
A majority of the old view must survive into the new one for this to be
live, which holds for single-node joins/leaves — the granularity the
membership layer operates at (see docs/MEMBERSHIP.md).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Tuple

from ..core.messages import NodeId


@dataclasses.dataclass(frozen=True)
class MembershipView:
    """One installed membership view: an epoch plus a sorted member set."""

    epoch: int
    members: Tuple[NodeId, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.members)))
        if ordered != self.members:
            object.__setattr__(self, "members", ordered)

    def quorum(self) -> int:
        """Majority size over this view's members."""

        return len(self.members) // 2 + 1

    def contains(self, node: NodeId) -> bool:
        return node in self.members

    def with_joined(self, node: NodeId) -> "MembershipView":
        """The successor view admitting *node*."""

        return MembershipView(
            epoch=self.epoch + 1,
            members=tuple(sorted(set(self.members) | {node})),
        )

    def with_removed(self, node: NodeId) -> "MembershipView":
        """The successor view excising *node*."""

        return MembershipView(
            epoch=self.epoch + 1,
            members=tuple(sorted(set(self.members) - {node})),
        )

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe representation (journal / wire / monitor)."""

        return {"epoch": self.epoch, "members": list(self.members)}

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "MembershipView":
        return cls(
            epoch=int(payload.get("epoch", 0)),
            members=tuple(int(n) for n in payload.get("members", ())),
        )

    @classmethod
    def initial(cls, members: Iterable[NodeId]) -> "MembershipView":
        """The bootstrap view (epoch 0, static construction-time set)."""

        return cls(epoch=0, members=tuple(sorted(set(members))))

"""Wire messages of the membership (view-change) protocol.

All of these are node-scoped control messages: like heartbeats and
token probes they carry ``lock_id=""`` (except the per-lock custody
handoff and child migration, which name the lock they splice).  They
ride the same envelopes and transports as protocol messages and are
consumed by :class:`repro.faults.recovery.RecoveryManager`, never by a
lock automaton.

The view-change handshake mirrors the token-regeneration two-phase
pattern: ``ViewProposal`` → quorum of ``ViewAck`` over the *current*
view → ``ViewInstall`` broadcast to the union of the old and new member
sets.  Installs are idempotent (epoch-guarded), so the proposer and the
heartbeat anti-entropy path may re-send them freely.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..core.messages import (
    MESSAGE_TYPE_LABELS,
    LockId,
    Message,
    NodeId,
)
from ..core.modes import LockMode


@dataclasses.dataclass(frozen=True)
class JoinRequest(Message):
    """A booted newcomer asks *sponsor* (the receiver) to admit it.

    ``sender`` is the joiner.  Idempotent: a sponsor already running (or
    done with) a proposal admitting the sender ignores duplicates.
    """


@dataclasses.dataclass(frozen=True)
class StateTransfer(Message):
    """Bootstrap snapshot for a joiner: current view + routing state.

    ``hints`` carries the sponsor's token-location beliefs as
    ``(lock, holder, epoch)`` rows; ``floors`` the per-lock fence floors
    so the joiner rejects stale fenced traffic from day one.  Re-sent
    whenever the joiner's heartbeat shows a stale view epoch, so a lost
    transfer heals itself.
    """

    view_epoch: int
    members: Tuple[NodeId, ...]
    hints: Tuple[Tuple[LockId, NodeId, int], ...] = ()
    floors: Tuple[Tuple[LockId, int], ...] = ()


@dataclasses.dataclass(frozen=True)
class ViewProposal(Message):
    """Phase 1: propose installing view *epoch* with *members*.

    ``joined``/``removed`` are the delta against the proposer's current
    view; ``forced`` marks a decommission (the removed node is dead and
    its leases/copyset entries must be fenced out rather than drained).
    """

    epoch: int
    members: Tuple[NodeId, ...]
    joined: Tuple[NodeId, ...] = ()
    removed: Tuple[NodeId, ...] = ()
    forced: bool = False


@dataclasses.dataclass(frozen=True)
class ViewAck(Message):
    """Phase 1 answer: the sender promises view *epoch* to the proposer."""

    epoch: int


@dataclasses.dataclass(frozen=True)
class ViewInstall(Message):
    """Phase 2: install the quorum-acked view.  Epoch-guarded, idempotent."""

    epoch: int
    members: Tuple[NodeId, ...]
    joined: Tuple[NodeId, ...] = ()
    removed: Tuple[NodeId, ...] = ()
    forced: bool = False


@dataclasses.dataclass(frozen=True)
class HandoffMessage(Message):
    """A departing token holder offers custody of *lock_id* to the receiver.

    ``epoch`` is the leaver's current token epoch; the receiver takes
    custody by regenerating at a strictly higher epoch under a custody
    fence, then broadcasts the new location — which is what demotes the
    leaver (``observe_epoch``).  Re-sent every leave tick until the
    leaver sees itself demoted, and idempotent at the receiver.
    """

    epoch: int


@dataclasses.dataclass(frozen=True)
class ChildMigrate(Message):
    """A departing parent asks the receiver to adopt one of its children.

    Sent *before* the child is told to reattach, so the child's subtree
    mode (``mode`` under attachment epoch ``seq``) is recorded at the new
    parent while the leaver still accounts for it — over-approximation is
    Rule-1-safe in every message ordering, under-approximation is not.
    """

    child: NodeId
    mode: LockMode
    seq: int = 0


MESSAGE_TYPE_LABELS.update(
    {
        JoinRequest: "join-request",
        StateTransfer: "state-transfer",
        ViewProposal: "view-proposal",
        ViewAck: "view-ack",
        ViewInstall: "view-install",
        HandoffMessage: "handoff",
        ChildMigrate: "child-migrate",
    }
)

#: Message types consumed by the membership layer inside RecoveryManager.
MEMBERSHIP_TYPES = (
    JoinRequest,
    StateTransfer,
    ViewProposal,
    ViewAck,
    ViewInstall,
    HandoffMessage,
    ChildMigrate,
)

"""CORBA-concurrency-service-style public facade and transactions."""

from .lockset import HierarchicalLockSet, LockSet, LockSetFactory
from .transaction import Transaction, TransactionManager, TxState

__all__ = [
    "HierarchicalLockSet",
    "LockSet",
    "LockSetFactory",
    "Transaction",
    "TransactionManager",
    "TxState",
]

"""CORBA-concurrency-service-style public facade and transactions."""

from .fenced import FencedResource, FencedWriteError, WriteRecord
from .lockset import HierarchicalLockSet, LockSet, LockSetFactory
from .sessions import Session, SessionManager, SESSIONS_JOURNAL_KEY
from .transaction import Transaction, TransactionManager, TxState

__all__ = [
    "FencedResource",
    "FencedWriteError",
    "HierarchicalLockSet",
    "LockSet",
    "LockSetFactory",
    "Session",
    "SessionManager",
    "SESSIONS_JOURNAL_KEY",
    "Transaction",
    "TransactionManager",
    "TxState",
    "WriteRecord",
]

"""CORBA-concurrency-service-style public facade and transactions."""

from .lockset import HierarchicalLockSet, LockSet, LockSetFactory
from .sessions import Session, SessionManager, SESSIONS_JOURNAL_KEY
from .transaction import Transaction, TransactionManager, TxState

__all__ = [
    "HierarchicalLockSet",
    "LockSet",
    "LockSetFactory",
    "Session",
    "SessionManager",
    "SESSIONS_JOURNAL_KEY",
    "Transaction",
    "TransactionManager",
    "TxState",
]

"""A minimal strict two-phase-locking transaction layer.

The paper motivates hierarchical locks with transaction processing; this
module closes that loop: a :class:`Transaction` acquires every lock it
touches through the hierarchical protocol (growing phase), holds them all
until :meth:`commit` or :meth:`abort` (strict 2PL), and then releases in
reverse acquisition order.  Because reads/writes follow the
multi-granularity discipline and entry locks are acquired leaf-last,
transactions that touch disjoint entries proceed fully in parallel —
exactly the concurrency the intent modes exist to unlock.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..core.hierarchy import lock_plan
from ..core.messages import LockId
from ..core.modes import LockMode, stronger_or_equal
from ..errors import LockUsageError
from ..runtime.cluster import BlockingLockClient


class TxState(enum.Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One strict-2PL transaction bound to a node's lock client."""

    def __init__(
        self, client: BlockingLockClient, timeout: Optional[float] = None
    ) -> None:
        self._client = client
        self._timeout = timeout
        self._holds: List[Tuple[LockId, LockMode]] = []
        self._strongest: Dict[LockId, LockMode] = {}
        self.state = TxState.ACTIVE

    @property
    def holds(self) -> List[Tuple[LockId, LockMode]]:
        """Locks currently held, in acquisition order."""

        return list(self._holds)

    def read(self, lock_id: LockId) -> None:
        """Declare a read of *lock_id*: R on it, IR on its ancestors."""

        self._access(lock_id, LockMode.R)

    def write(self, lock_id: LockId) -> None:
        """Declare a write of *lock_id*: W on it, IW on its ancestors."""

        self._access(lock_id, LockMode.W)

    def read_for_update(self, lock_id: LockId) -> None:
        """Declare a read-then-write intent: U on it, IW on ancestors."""

        self._access(lock_id, LockMode.U)

    def upgrade(self, lock_id: LockId) -> None:
        """Upgrade a prior :meth:`read_for_update` to a write (Rule 7)."""

        self._check_active()
        if self._strongest.get(lock_id) is not LockMode.U:
            raise LockUsageError(
                f"transaction holds no U lock on {lock_id!r} to upgrade"
            )
        self._client.upgrade(lock_id, timeout=self._timeout)
        self._replace_hold(lock_id, LockMode.U, LockMode.W)

    def commit(self) -> None:
        """End the transaction, releasing every lock (shrinking phase)."""

        self._finish(TxState.COMMITTED)

    def abort(self) -> None:
        """Abandon the transaction, releasing every lock."""

        self._finish(TxState.ABORTED)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self.state is TxState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    # ------------------------------------------------------------------

    def _access(self, lock_id: LockId, mode: LockMode) -> None:
        self._check_active()
        for step_id, step_mode in lock_plan(lock_id, mode):
            already = self._strongest.get(step_id, LockMode.NONE)
            if already is not LockMode.NONE and stronger_or_equal(
                already, step_mode
            ):
                continue  # An equal-or-stronger hold already covers this.
            from ..core.modes import compatible

            if not compatible(already, step_mode):
                # Escalating past one's own conflicting hold (e.g. R → W)
                # would self-deadlock: the new mode waits on every current
                # holder, including this transaction.  This is precisely
                # the situation upgrade locks exist for (§3.4).
                raise LockUsageError(
                    f"cannot escalate {already} → {step_mode} on "
                    f"{step_id!r} within one transaction; use "
                    "read_for_update() + upgrade() instead"
                )
            self._client.acquire(step_id, step_mode, timeout=self._timeout)
            self._holds.append((step_id, step_mode))
            if not stronger_or_equal(already, step_mode):
                self._strongest[step_id] = step_mode

    def _replace_hold(self, lock_id: LockId, old: LockMode, new: LockMode) -> None:
        for index, (held_id, held_mode) in enumerate(self._holds):
            if held_id == lock_id and held_mode is old:
                self._holds[index] = (lock_id, new)
                break
        self._strongest[lock_id] = new

    def _finish(self, final_state: TxState) -> None:
        self._check_active()
        for lock_id, mode in reversed(self._holds):
            self._client.release(lock_id, mode)
        self._holds.clear()
        self._strongest.clear()
        self.state = final_state

    def _check_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise LockUsageError(f"transaction is {self.state.value}")


class TransactionManager:
    """Mints transactions for one node."""

    def __init__(
        self, client: BlockingLockClient, timeout: Optional[float] = None
    ) -> None:
        self._client = client
        self._timeout = timeout

    def begin(self) -> Transaction:
        """Start a new strict-2PL transaction."""

        return Transaction(self._client, timeout=self._timeout)

"""Fencing-token-checked application resources (closes FAULTS.md §4).

The lease layer fences the *service* side of a partition: a
quorum-silent holder force-releases its modes and the majority raises
the per-lock fence floor so the revoked holder's protocol traffic is
rejected (PROTOCOL.md §14).  What the service cannot fence by itself is
the *resource* — the storage register, file, or queue the lock was
protecting.  A de-fenced holder that keeps touching that resource
directly (it does not know it was fenced; that is the whole point of a
partition) still corrupts it unless the resource checks tokens too.

:class:`FencedResource` is that last inch: a resource-side guard that
accepts a write only when it presents a fencing token strictly above
both the highest floor the resource has observed and the token of every
previously accepted write.  The rules mirror the automata's own
``fencing_token`` checks, so one token minted by the lock service
protects the full path:

* **Floor check** — a write whose token is at or below the observed
  fence floor comes from a revoked incarnation; reject it.
* **Monotonicity check** — a write whose token is below one the
  resource already accepted is a message from the past (delayed on the
  network while a newer holder proceeded); reject it, and raise the
  implied floor so the stale holder stays rejected.

Both rejections raise :class:`FencedWriteError` and are tallied so
tests and demos can assert exactly which writes the fence stopped; see
``examples/fenced_register.py`` for the end-to-end demonstration with
a lease-fenced minority holder.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from ..errors import ReproError

__all__ = ["FencedResource", "FencedWriteError", "WriteRecord"]


class FencedWriteError(ReproError):
    """A write presented a fencing token the resource must reject.

    Carries the offending ``token`` and the resource's current
    ``floor`` so callers (and tests) can see exactly why the write was
    fenced out.
    """

    def __init__(self, message: str, token: int, floor: int) -> None:
        super().__init__(message)
        self.token = int(token)
        self.floor = int(floor)


@dataclasses.dataclass(frozen=True)
class WriteRecord:
    """One accepted write: what was written, under which token, when."""

    token: int
    value: Any
    at: Optional[float] = None


class FencedResource:
    """A check-and-reject register guarded by fencing tokens.

    The resource is deliberately dumb — it holds one value and two
    monotonic integers (the observed floor and the highest accepted
    token) — because that is all a real resource needs to make lock
    fencing bind end-to-end.  It never talks to the lock service;
    callers feed it floor observations (e.g. from
    :meth:`~repro.core.automaton.HierarchicalLockAutomaton.fence_floor`
    or a revocation notice) and writes carry the token minted with the
    holder's lease.
    """

    def __init__(self, name: str = "resource", initial: Any = None) -> None:
        self.name = name
        self._value = initial
        self._floor = 0
        self._high_water = 0
        #: Accepted writes in order (bounded only by the caller's use;
        #: demos and tests read it as the resource's effective history).
        self.history: List[WriteRecord] = []
        self.writes_accepted = 0
        self.writes_rejected = 0

    # -- observation -------------------------------------------------------

    @property
    def floor(self) -> int:
        """Highest fence floor this resource has observed."""

        return self._floor

    @property
    def high_water(self) -> int:
        """Fencing token of the newest accepted write (0 = none yet)."""

        return self._high_water

    def observe_floor(self, floor: int) -> int:
        """Raise the observed fence floor (monotonic; returns the floor).

        Feed this from the lock service's fence-floor bumps — a revoked
        lease's token, a regeneration announce, a view install that
        fenced a decommissioned holder.  Lowering is silently ignored:
        floors only ever rise.
        """

        if int(floor) > self._floor:
            self._floor = int(floor)
        return self._floor

    # -- the guarded operations --------------------------------------------

    def check(self, token: int) -> None:
        """Validate *token* for a write; raise :class:`FencedWriteError`.

        Split from :meth:`write` so read-modify-write callers can fail
        fast before computing the new value.
        """

        token = int(token)
        if token <= 0:
            self.writes_rejected += 1
            raise FencedWriteError(
                f"{self.name}: write carries no fencing token",
                token=token,
                floor=self._floor,
            )
        if token <= self._floor:
            self.writes_rejected += 1
            raise FencedWriteError(
                f"{self.name}: token {token} is at/below the observed "
                f"fence floor {self._floor} (revoked holder)",
                token=token,
                floor=self._floor,
            )
        if token < self._high_water:
            # A write from the past: a newer holder already wrote.  Its
            # token becomes part of the floor so the laggard stays out.
            self.writes_rejected += 1
            self._floor = max(self._floor, token)
            raise FencedWriteError(
                f"{self.name}: token {token} is older than an accepted "
                f"write under {self._high_water} (stale holder)",
                token=token,
                floor=self._floor,
            )

    def write(self, token: int, value: Any, at: Optional[float] = None) -> Any:
        """Apply a write under *token*; returns the stored value.

        Rejects (raising :class:`FencedWriteError`) when the token is at
        or below the observed floor, or below an already-accepted write.
        """

        self.check(token)
        token = int(token)
        self._value = value
        self._high_water = max(self._high_water, token)
        self.history.append(WriteRecord(token=token, value=value, at=at))
        self.writes_accepted += 1
        return value

    def read(self) -> Any:
        """Current value (reads are never fenced — they cannot corrupt)."""

        return self._value

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters for verdicts and demos."""

        return {
            "accepted": self.writes_accepted,
            "rejected": self.writes_rejected,
            "floor": self._floor,
            "high_water": self._high_water,
        }

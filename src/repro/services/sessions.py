"""Application sessions: hold ownership that survives the process.

The CORBA concurrency service hands out locks to *clients*, not to
transport endpoints; a client that reconnects (or a node that restarts
with its journal) is the same application session and keeps its holds.
This module supplies that identity layer for the reproduction: a
:class:`SessionManager` per node records which session owns which holds,
rides the durability journal across crashes (under the reserved
``"@sessions"`` journal key), and implements the ``reclaim`` callback of
``RecoveryManager.rejoin_from_journal`` — a *surviving* session
re-asserts its holds under a fresh lease instead of being disowned,
while an *expired* session's holds are released and the session is
garbage-collected by the recovery manager.

A session survives a restart iff the downtime stayed within the lease
reclaim window (``LeaseConfig.session_ttl``): past that, peers may
already have revoked the session's leases and granted conflicting
modes, so reclaiming would risk a Rule-1 violation — the session is
expired instead.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

#: Reserved journal key the session payload is recorded under; popped
#: out of the recovered state before per-lock rejoin.
SESSIONS_JOURNAL_KEY = "@sessions"

ACTIVE = "active"
EXPIRED = "expired"


@dataclasses.dataclass
class Session:
    """One application session and the holds it owns."""

    session_id: str
    node: int
    state: str = ACTIVE
    #: Multiset of owned holds: ``(lock, mode-str) -> count``.
    holds: Dict[Tuple[str, str], int] = dataclasses.field(default_factory=dict)
    #: Of :attr:`holds`, how many were covered by at least one heartbeat
    #: lease advertisement.  Only advertised holds are reclaimable after
    #: a restart: a hold whose lease no peer ever saw pins nothing out
    #: there — peers may have evicted and re-granted over it, so
    #: re-asserting it would risk a Rule-1 violation.
    advertised: Dict[Tuple[str, str], int] = dataclasses.field(
        default_factory=dict
    )
    last_active: float = 0.0

    @property
    def hold_count(self) -> int:
        return sum(self.holds.values())

    def note_grant(self, lock: str, mode: str, now: float) -> None:
        key = (lock, str(mode))
        self.holds[key] = self.holds.get(key, 0) + 1
        self.last_active = max(self.last_active, now)

    def note_release(self, lock: str, mode: str, now: float) -> None:
        key = (lock, str(mode))
        count = self.holds.get(key, 0)
        if count <= 1:
            self.holds.pop(key, None)
        else:
            self.holds[key] = count - 1
        remaining = self.holds.get(key, 0)
        if self.advertised.get(key, 0) > remaining:
            if remaining:
                self.advertised[key] = remaining
            else:
                self.advertised.pop(key, None)
        self.last_active = max(self.last_active, now)

    def note_advertised(self, lock: str) -> bool:
        """A heartbeat carried *lock*'s lease: its holds are now pinned
        by peers until expiry.  Returns True when anything changed (the
        caller re-journals the session payload only then)."""

        changed = False
        for (held_lock, mode), count in self.holds.items():
            if held_lock != lock:
                continue
            key = (held_lock, mode)
            if self.advertised.get(key, 0) != count:
                self.advertised[key] = count
                changed = True
        return changed

    def expire(self) -> None:
        self.state = EXPIRED
        self.holds.clear()
        self.advertised.clear()

    def surviving(self, now: float, ttl: float) -> bool:
        """True iff the session may still reclaim its holds at *now*."""

        return self.state == ACTIVE and (now - self.last_active) <= ttl

    def to_payload(self) -> Dict[str, object]:
        return {
            "id": self.session_id,
            "node": int(self.node),
            "state": self.state,
            "holds": sorted(
                [lock, mode, int(count)]
                for (lock, mode), count in self.holds.items()
            ),
            "advertised": sorted(
                [lock, mode, int(count)]
                for (lock, mode), count in self.advertised.items()
            ),
            "last_active": float(self.last_active),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Session":
        session = cls(
            session_id=str(payload.get("id", "")),
            node=int(payload.get("node", 0)),
            state=str(payload.get("state", ACTIVE)),
            last_active=float(payload.get("last_active", 0.0)),
        )
        for lock, mode, count in payload.get("holds", ()):
            session.holds[(str(lock), str(mode))] = int(count)
        for lock, mode, count in payload.get("advertised", ()):
            session.advertised[(str(lock), str(mode))] = int(count)
        return session


class SessionManager:
    """All application sessions hosted by one node.

    The chaos workload runs one implicit session per node (id
    ``s<node>``), but the layer supports many; ids are stable across
    restarts — that stability is what makes reclaim meaningful.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._sessions: Dict[str, Session] = {}
        #: Best peer fanout any advertisement of each lock's lease ever
        #: reached (``lock -> live peer count at heartbeat time``).  Rides
        #: the journal: after a crash-restart it tells the rejoin path
        #: whether the pre-crash advertisement reached a quorum, or only
        #: a minority that may itself be gone (see
        #: ``RecoveryManager.rejoin_from_journal``, PROTOCOL.md §14).
        self._advert_fanout: Dict[str, int] = {}
        self.gc_count = 0
        self.expired_count = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def default_session(self, now: float = 0.0) -> Session:
        """The node's implicit workload session (created on first use)."""

        return self.open(f"s{self.node_id}", now)

    def open(self, session_id: str, now: float = 0.0) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            session = Session(
                session_id=session_id, node=self.node_id, last_active=now
            )
            self._sessions[session_id] = session
        return session

    def get(self, session_id: str) -> Optional[Session]:
        return self._sessions.get(session_id)

    def sessions(self) -> List[Session]:
        return [self._sessions[k] for k in sorted(self._sessions)]

    def note_grant(self, lock: str, mode: str, now: float) -> None:
        self.default_session(now).note_grant(lock, mode, now)

    def note_release(self, lock: str, mode: str, now: float) -> None:
        self.default_session(now).note_release(lock, mode, now)

    def note_advertised(self, locks, fanout: Optional[int] = None) -> bool:
        """Mark holds on *locks* lease-advertised; True if any changed.

        *fanout* is how many live peers the carrying heartbeat fanned out
        to; the per-lock maximum is kept (and journaled) so a restart can
        judge whether its pre-crash advertisement reached a quorum.
        """

        changed = False
        for session in self._sessions.values():
            if session.state != ACTIVE:
                continue
            for lock in locks:
                changed |= session.note_advertised(str(lock))
        if fanout is not None:
            for lock in locks:
                key = str(lock)
                if fanout > self._advert_fanout.get(key, -1):
                    self._advert_fanout[key] = int(fanout)
                    changed = True
        return changed

    def advert_fanout(self, lock: str) -> Optional[int]:
        """Best advertisement fanout recorded for *lock* (None if never
        recorded — e.g. a pre-upgrade journal payload)."""

        return self._advert_fanout.get(str(lock))

    def expire_all(self) -> int:
        """Expire every active session (self-fence); returns the count."""

        expired = 0
        for session in self._sessions.values():
            if session.state == ACTIVE:
                session.expire()
                expired += 1
        self.expired_count += expired
        return expired

    def gc(self, now: float, ttl: float) -> int:
        """Drop expired sessions and age out silent ones; returns removed.

        An ACTIVE session with no holds that has been silent past *ttl*
        is expired first (its client is gone), then every EXPIRED
        session is removed.  Sessions still owning holds are never
        collected — their holds must be released or reclaimed first.
        """

        for session in self._sessions.values():
            if (
                session.state == ACTIVE
                and not session.holds
                and session.last_active > 0.0
                and (now - session.last_active) > ttl
            ):
                session.expire()
                self.expired_count += 1
        dead = [
            sid
            for sid, session in self._sessions.items()
            if session.state == EXPIRED and not session.holds
        ]
        for sid in dead:
            del self._sessions[sid]
        self.gc_count += len(dead)
        return len(dead)

    # -- durability ----------------------------------------------------

    def export(self) -> Dict[str, object]:
        """JSON-safe payload for the durability journal."""

        return {
            "v": 1,
            "node": int(self.node_id),
            "sessions": [s.to_payload() for s in self.sessions()],
            "advert_fanout": sorted(
                [lock, int(fanout)]
                for lock, fanout in self._advert_fanout.items()
            ),
        }

    def restore(self, payload: Dict[str, object]) -> None:
        """Replace the session set with a journaled *payload*."""

        self._sessions.clear()
        for entry in payload.get("sessions", ()):
            session = Session.from_payload(entry)
            self._sessions[session.session_id] = session
        self._advert_fanout = {
            str(lock): int(fanout)
            for lock, fanout in payload.get("advert_fanout", ())
        }

    def reclaimer(
        self, now: float, ttl: float
    ) -> Tuple[Callable[[str, object], bool], List[Session]]:
        """Build the ``reclaim`` callback for ``rejoin_from_journal``.

        Returns ``(reclaim, survivors)``.  The callback answers True for
        each restored ``(lock, mode)`` hold owned by a surviving session
        (consuming one unit of the session's multiset so counts stay
        exact); holds of expired sessions — or holds no session claims —
        answer False and are released by the rejoin path.  Sessions past
        the reclaim window are expired as a side effect.

        Only *advertised* holds are reclaimable: a lease at least one
        heartbeat carried is mirrored by peers, who then provably defer
        eviction and token regeneration until it expires — so a restart
        inside the reclaim window re-asserts into an unchanged cluster.
        A hold granted after the last pre-crash heartbeat pinned
        nothing; survivors may already have regenerated and granted a
        conflicting mode over it, so it is disowned like any other.
        """

        survivors: List[Session] = []
        budget: Dict[Tuple[str, str], int] = {}
        for session in self.sessions():
            if session.state != ACTIVE:
                continue
            if not session.surviving(now, ttl):
                session.expire()
                self.expired_count += 1
                continue
            survivors.append(session)
            for key, count in session.holds.items():
                usable = min(count, session.advertised.get(key, 0))
                if usable:
                    budget[key] = budget.get(key, 0) + usable

        def reclaim(lock: str, mode: object) -> bool:
            key = (str(lock), str(mode))
            remaining = budget.get(key, 0)
            if remaining <= 0:
                return False
            budget[key] = remaining - 1
            return True

        return reclaim, survivors

"""CORBA Concurrency Service style facade: ``LockSet`` objects.

The OMG Concurrency Service [6] exposes lock sets with ``lock``,
``attempt_lock``, ``unlock`` and ``change_mode`` operations in the five
modes; the paper positions its protocol as a scalable implementation of
exactly this interface.  ``LockSet`` adapts a
:class:`~repro.runtime.cluster.BlockingLockClient` to that surface, adding
context-manager sugar and multi-granularity helpers built on
:func:`repro.core.hierarchy.lock_plan`.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Tuple

from ..core.hierarchy import lock_plan, release_plan
from ..core.messages import LockId
from ..core.modes import LockMode, strength
from ..errors import LockUsageError
from ..runtime.cluster import BlockingLockClient


class LockSet:
    """One lockable resource as seen from one node.

    Mirrors the OMG ``CosConcurrencyControl::LockSet`` operations:

    * :meth:`lock` — blocking acquire,
    * :meth:`attempt_lock` — non-blocking local-only try,
    * :meth:`unlock` — release,
    * :meth:`change_mode` — atomic U→W upgrade or legal downgrade.
    """

    def __init__(self, client: BlockingLockClient, lock_id: LockId) -> None:
        self._client = client
        self._lock_id = lock_id

    @property
    def lock_id(self) -> LockId:
        """The resource this lock set protects."""

        return self._lock_id

    def lock(self, mode: LockMode, timeout: Optional[float] = None) -> None:
        """Acquire the lock in *mode*, blocking until granted."""

        self._client.acquire(self._lock_id, mode, timeout=timeout)

    def attempt_lock(self, mode: LockMode) -> bool:
        """Try to acquire *mode* without blocking or messaging.

        Succeeds only when the local owned mode already covers the
        request (Rule 2's zero-message path); never leaves a pending
        request behind on failure.
        """

        return self._client.attempt(self._lock_id, mode)

    def unlock(self, mode: LockMode) -> None:
        """Release one hold of *mode*."""

        self._client.release(self._lock_id, mode)

    def change_mode(
        self, held: LockMode, to: LockMode, timeout: Optional[float] = None
    ) -> None:
        """Atomically change a held mode.

        ``U → W`` runs the paper's Rule 7 upgrade; weakenings run the
        downgrade extension.  Any other strengthening must release and
        re-acquire (as the CORBA specification also effectively requires,
        since it may block and conflict).
        """

        if held is LockMode.U and to is LockMode.W:
            self._client.upgrade(self._lock_id, timeout=timeout)
        elif strength(to) < strength(held):
            self._client.downgrade(self._lock_id, held, to)
        else:
            raise LockUsageError(
                f"change_mode {held}→{to}: only U→W upgrades and strict "
                "downgrades are atomic; release and re-acquire instead"
            )

    @contextlib.contextmanager
    def held(self, mode: LockMode, timeout: Optional[float] = None) -> Iterator[None]:
        """``with lockset.held(LockMode.R): ...`` acquire/release sugar."""

        self.lock(mode, timeout=timeout)
        try:
            yield
        finally:
            self.unlock(mode)


class HierarchicalLockSet:
    """Multi-granularity sugar: lock a resource with its ancestors.

    Acquires every ancestor in the derived intention mode (outermost
    first), then the target — the paper's Section 3.1 usage pattern — and
    releases in the exact reverse order.
    """

    def __init__(self, client: BlockingLockClient, lock_id: LockId) -> None:
        self._client = client
        self._lock_id = lock_id

    @property
    def lock_id(self) -> LockId:
        """The (leaf) resource this lock set protects."""

        return self._lock_id

    def lock(self, mode: LockMode, timeout: Optional[float] = None) -> None:
        """Acquire intent locks on all ancestors, then *mode* on the leaf."""

        acquired: List[Tuple[LockId, LockMode]] = []
        try:
            for lock_id, step_mode in lock_plan(self._lock_id, mode):
                self._client.acquire(lock_id, step_mode, timeout=timeout)
                acquired.append((lock_id, step_mode))
        except Exception:
            for lock_id, step_mode in reversed(acquired):
                self._client.release(lock_id, step_mode)
            raise

    def unlock(self, mode: LockMode) -> None:
        """Release the leaf and every ancestor intent, innermost first."""

        for lock_id, step_mode in release_plan(self._lock_id, mode):
            self._client.release(lock_id, step_mode)

    @contextlib.contextmanager
    def held(self, mode: LockMode, timeout: Optional[float] = None) -> Iterator[None]:
        """Context-manager acquire/release across all granularities."""

        self.lock(mode, timeout=timeout)
        try:
            yield
        finally:
            self.unlock(mode)


class LockSetFactory:
    """Creates lock sets for one node, à la ``LockSetFactory`` in CORBA."""

    def __init__(self, client: BlockingLockClient) -> None:
        self._client = client

    def create(self, lock_id: LockId) -> LockSet:
        """Create a flat lock set on *lock_id*."""

        return LockSet(self._client, lock_id)

    def create_hierarchical(self, lock_id: LockId) -> HierarchicalLockSet:
        """Create a multi-granularity lock set on *lock_id*."""

        return HierarchicalLockSet(self._client, lock_id)

"""Baseline: the Naimi-Tréhel distributed mutual-exclusion protocol [14].

Used by the paper's evaluation in two configurations:

* **pure** — a single token arbitrates one global lock,
* **same work** — one token per table entry; hierarchical operations are
  emulated by acquiring every relevant entry token in a fixed global
  order (deadlock avoidance by ordering).

The ordered multi-lock acquisition logic lives in the workload clients
(:mod:`repro.workload`), since it is application behaviour, not protocol.
"""

from .automaton import NaimiAutomaton
from .lockspace import NaimiLockSpace
from .messages import (
    NaimiMessage,
    NaimiRequestMessage,
    NaimiTokenMessage,
    naimi_message_type_label,
)

__all__ = [
    "NaimiAutomaton",
    "NaimiLockSpace",
    "NaimiMessage",
    "NaimiRequestMessage",
    "NaimiTokenMessage",
    "naimi_message_type_label",
]

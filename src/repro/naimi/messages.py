"""Messages of the Naimi-Tréhel mutual-exclusion protocol [14].

Two message types only: a request travelling along the probable-owner
(``last``) chain, and the token itself.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..core.messages import LockId, NodeId, TraceContext


@dataclasses.dataclass(frozen=True)
class NaimiMessage:
    """Base class for Naimi protocol messages."""

    lock_id: LockId
    sender: NodeId
    #: Optional causal-tracing context (see repro.core.messages).
    trace: Optional[TraceContext] = dataclasses.field(
        default=None, kw_only=True, compare=False, repr=False
    )


@dataclasses.dataclass(frozen=True)
class NaimiRequestMessage(NaimiMessage):
    """A request by ``origin``, forwarded along probable-owner links."""

    origin: NodeId
    #: Fencing token the issuing session presents (see
    #: :mod:`repro.leases`); ``0`` = unfenced.  A positive token at or
    #: below the receiver's fence floor marks a revoked holder's request
    #: and is dropped.
    fencing_token: int = 0


@dataclasses.dataclass(frozen=True)
class NaimiTokenMessage(NaimiMessage):
    """The token: possession grants the critical section."""


NAIMI_MESSAGE_TYPE_LABELS = {
    NaimiRequestMessage: "request",
    NaimiTokenMessage: "token",
}


def naimi_message_type_label(message: NaimiMessage) -> str:
    """Return the metrics label for *message*."""

    return NAIMI_MESSAGE_TYPE_LABELS[type(message)]

"""The Naimi-Tréhel token-based mutual-exclusion automaton [14].

This is the comparison baseline of the paper's evaluation: the best known
average-case message complexity, O(log n), achieved through **path
reversal** — every node along a request's forwarding path points its
probable-owner (``last``) link at the requester, compressing future paths.

The distributed FIFO queue is the chain of ``next`` pointers: the current
tail of the queue learns about the next requester and remembers it; on
release the token is sent straight to that successor.

Like :class:`repro.core.automaton.HierarchicalLockAutomaton` this class is
transport-agnostic (returns envelopes, notifies grants via a listener), so
the exact same simulator and runtime drive both protocols — a requirement
for a fair reproduction of Figures 5 and 6.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.messages import Envelope, LockId, NodeId
from ..errors import LockUsageError, ProtocolError
from ..obs.sink import ENQUEUED, GRANTED, ISSUED, RELEASED, ObsSink
from .messages import NaimiMessage, NaimiRequestMessage, NaimiTokenMessage

#: Signature of the grant listener: ``(lock_id, ctx)``.
NaimiGrantListener = Callable[[LockId, object], None]


def _noop_listener(lock_id: LockId, ctx: object) -> None:
    """Default listener used when the caller does not need callbacks."""


class NaimiAutomaton:
    """Per-(node, lock) state of the Naimi-Tréhel protocol.

    Parameters
    ----------
    node_id:
        This node's identity.
    lock_id:
        The lock (exclusive token) this automaton manages.
    last:
        Initial probable-owner pointer; ``None`` iff this node starts as
        the tree root (and token holder).
    listener:
        Called as ``listener(lock_id, ctx)`` when a request is granted.
    """

    def __init__(
        self,
        node_id: NodeId,
        lock_id: LockId,
        last: Optional[NodeId],
        listener: NaimiGrantListener = _noop_listener,
    ) -> None:
        self._node_id = node_id
        self._lock_id = lock_id
        # ``last is None`` encodes the paper's ``last == self`` root test.
        self._last = last
        self._next: Optional[NodeId] = None
        self._has_token = last is None
        self._in_cs = False
        self._requesting = False
        self._ctx: object = None
        self._listener = listener
        #: Optional observability sink (see :mod:`repro.obs`).  Span key
        #: is ``(lock_id, origin)`` — one outstanding request per node.
        self.obs: Optional[ObsSink] = None
        #: Optional durability journal (see :mod:`repro.persist`); same
        #: ``None``-gated pattern as ``obs``.
        self.persist = None
        #: Optional flight recorder (see :mod:`repro.obs.flightrec`);
        #: same ``None``-gated pattern.
        self.flightrec = None
        # Lease fencing (see repro.leases): highest revoked fencing token
        # observed for this lock.  Messages presenting a positive token at
        # or below the floor are dropped by :meth:`handle`.
        self._fence_floor = 0

    @property
    def fence_floor(self) -> int:
        """Highest revoked fencing token observed (lease extension)."""

        return self._fence_floor

    def raise_fence_floor(self, token: int) -> None:
        """Reject future messages fenced at or below *token*."""

        self._flight_op("raise_fence_floor", token=int(token))
        if token > self._fence_floor:
            self._fence_floor = int(token)
            self._persist("fence-raised")

    def _persist(self, kind: str) -> None:
        if self.persist is not None:
            self.persist.record(self, kind)

    def _flight_op(self, op: str, **args) -> None:
        if self.flightrec is not None:
            self.flightrec.record_op(self._lock_id, op, args)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def node_id(self) -> NodeId:
        """This node's identity."""

        return self._node_id

    @property
    def lock_id(self) -> LockId:
        """The managed lock's id."""

        return self._lock_id

    @property
    def has_token(self) -> bool:
        """Whether the token currently rests at this node."""

        return self._has_token

    @property
    def in_critical_section(self) -> bool:
        """Whether the application currently holds the lock here."""

        return self._in_cs

    @property
    def is_requesting(self) -> bool:
        """Whether this node has an unserved request outstanding."""

        return self._requesting

    @property
    def last(self) -> Optional[NodeId]:
        """Probable-owner link (``None`` = this node believes it is root)."""

        return self._last

    @property
    def next_node(self) -> Optional[NodeId]:
        """Successor in the distributed FIFO queue (if any)."""

        return self._next

    def is_idle(self) -> bool:
        """True iff no request, no critical section and no successor."""

        return not (self._requesting or self._in_cs or self._next is not None)

    def snapshot(self):
        """Read-only :class:`repro.obs.live.LockSnapshot` of this node.

        Naimi state maps onto the shared snapshot shape: ``last`` is the
        parent edge toward the believed token, the critical section is an
        exclusive ``W`` hold, and the ``next`` successor is the one queue
        entry this node knows about.
        """

        from ..obs.live import LockSnapshot, QueueEntry

        return LockSnapshot(
            lock=self._lock_id,
            believes_token=self._has_token,
            parent=self._last,
            held=(("W", 1),) if self._in_cs else (),
            pending="W" if self._requesting else None,
            queue=(
                (
                    QueueEntry(
                        origin=self._next,
                        mode="W",
                        key=f"{self._lock_id}:{self._next}",
                    ),
                )
                if self._next is not None
                else ()
            ),
        )

    # ------------------------------------------------------------------
    # Application API.
    # ------------------------------------------------------------------

    def request(self, ctx: object = None) -> List[Envelope]:
        """Request the critical section; grant arrives via the listener."""

        self._flight_op("request")
        if self._requesting or self._in_cs:
            raise LockUsageError(
                f"node {self._node_id} already requested {self._lock_id}"
            )
        self._requesting = True
        self._ctx = ctx
        if self.obs is not None:
            self.obs.phase(
                self._node_id, self._lock_id, (self._lock_id, self._node_id),
                ISSUED,
            )
        if self._last is None:
            if not self._has_token:
                raise ProtocolError("root without token cannot self-grant")
            self._enter()
            self._persist("request")
            return []
        target = self._last
        self._last = None  # Path reversal: the requester becomes a root.
        self._persist("request")
        return [
            Envelope(
                target,
                NaimiRequestMessage(
                    lock_id=self._lock_id,
                    sender=self._node_id,
                    origin=self._node_id,
                ),
            )
        ]

    def release(self) -> List[Envelope]:
        """Leave the critical section; pass the token to any successor."""

        self._flight_op("release")
        if not self._in_cs:
            raise LockUsageError(
                f"node {self._node_id} is not in the CS of {self._lock_id}"
            )
        self._in_cs = False
        if self.obs is not None:
            self.obs.phase(self._node_id, self._lock_id, None, RELEASED)
        if self._next is None:
            self._persist("release")
            return []  # Keep the token until someone asks.
        successor = self._next
        self._next = None
        self._has_token = False
        self._persist("release")
        return [
            Envelope(
                successor,
                NaimiTokenMessage(lock_id=self._lock_id, sender=self._node_id),
            )
        ]

    # ------------------------------------------------------------------
    # Transport API.
    # ------------------------------------------------------------------

    def handle(self, message: NaimiMessage) -> List[Envelope]:
        """Process one incoming protocol message, returning replies."""

        if message.lock_id != self._lock_id:
            raise ProtocolError(
                f"message for lock {message.lock_id!r} delivered to "
                f"automaton of {self._lock_id!r}"
            )
        if self.flightrec is not None:
            self.flightrec.record_msg(self._lock_id, message)
        token = getattr(message, "fencing_token", 0)
        if 0 < token <= self._fence_floor:
            return []  # Stale fencing token: a revoked holder's traffic.
        if isinstance(message, NaimiRequestMessage):
            return self._handle_request(message)
        if isinstance(message, NaimiTokenMessage):
            return self._handle_token(message)
        raise ProtocolError(f"unknown message type {type(message).__name__}")

    def _handle_request(self, msg: NaimiRequestMessage) -> List[Envelope]:
        """Forward along ``last``, or serve/enqueue if this node is root."""

        out: List[Envelope] = []
        if self._last is None:
            # This node is (or believes itself to be) the root.
            if self._requesting or self._in_cs or self._next is not None:
                if self._next is not None:
                    raise ProtocolError(
                        f"node {self._node_id} already has a successor"
                    )
                self._next = msg.origin
                if self.obs is not None:
                    # The requester just joined the distributed queue (it
                    # became the token holder's successor).
                    self.obs.phase(
                        msg.origin,
                        self._lock_id,
                        (self._lock_id, msg.origin),
                        ENQUEUED,
                    )
            else:
                self._has_token = False
                out.append(
                    Envelope(
                        msg.origin,
                        NaimiTokenMessage(
                            lock_id=self._lock_id,
                            sender=self._node_id,
                            trace=msg.trace,
                        ),
                    )
                )
        else:
            out.append(
                Envelope(
                    self._last,
                    NaimiRequestMessage(
                        lock_id=self._lock_id,
                        sender=self._node_id,
                        origin=msg.origin,
                        trace=msg.trace,
                    ),
                )
            )
        # Path reversal: future requests will be routed to this requester.
        self._last = msg.origin
        self._persist("handle")
        return out

    def _handle_token(self, msg: NaimiTokenMessage) -> List[Envelope]:
        """The token arrives: enter the critical section."""

        if not self._requesting:
            raise ProtocolError(
                f"node {self._node_id} received an unrequested token"
            )
        self._has_token = True
        self._enter()
        self._persist("handle")
        return []

    def _enter(self) -> None:
        """Complete the pending request."""

        self._requesting = False
        self._in_cs = True
        if self.obs is not None:
            self.obs.phase(
                self._node_id, self._lock_id, (self._lock_id, self._node_id),
                GRANTED,
            )
        ctx, self._ctx = self._ctx, None
        self._listener(self._lock_id, ctx)

    # ------------------------------------------------------------------
    # God-view membership splices (see repro.sim.cluster).
    # ------------------------------------------------------------------

    def splice_last(self, new_last: NodeId) -> None:
        """Re-point the probable-owner hint off a spliced-out node.

        God-view maintenance for fault-free membership changes; the
        caller guarantees quiescence and that *new_last* is a live member
        on the path toward the token.
        """

        self._flight_op("splice_last", last=new_last)
        if new_last == self._node_id:
            raise ProtocolError("a node cannot be its own probable owner")
        self._last = new_last
        self._persist("splice")

    def splice_take_token(self) -> None:
        """Become the token root (transplant from a spliced-out holder)."""

        self._flight_op("splice_take_token")
        self._has_token = True
        self._last = None
        self._persist("splice")

    def splice_retire(self, successor: NodeId) -> None:
        """Terminal state of a spliced-out node: idle, pointing away."""

        self._flight_op("splice_retire", successor=successor)
        self._has_token = False
        self._next = None
        if successor != self._node_id:
            self._last = successor
        self._persist("splice")

    # ------------------------------------------------------------------
    # Durability (see repro.persist).
    # ------------------------------------------------------------------

    def persisted_state(self) -> dict:
        """Full JSON-safe state for the durability journal."""

        return {
            "snapshot": self.snapshot().to_payload(),
            "last": self._last,
            "next": self._next,
            "has_token": self._has_token,
            "in_cs": self._in_cs,
            "requesting": self._requesting,
            "fence_floor": self._fence_floor,
        }

    def adopt_persisted(self, state: dict) -> None:
        """Replace this automaton's state with a persisted payload.

        The request context is not recoverable — a restored requesting
        node's grant fires the listener with ``ctx=None``.
        """

        self._flight_op("adopt_persisted", state=state)
        last = state.get("last")
        self._last = None if last is None else int(last)
        nxt = state.get("next")
        self._next = None if nxt is None else int(nxt)
        self._has_token = bool(state.get("has_token", False))
        self._in_cs = bool(state.get("in_cs", False))
        self._requesting = bool(state.get("requesting", False))
        self._fence_floor = int(state.get("fence_floor", 0))
        self._ctx = None

    def flight_state(self) -> dict:
        """Exact JSON-safe state for flight-recorder checkpoints."""

        return {
            "last": self._last,
            "next": self._next,
            "has_token": self._has_token,
            "in_cs": self._in_cs,
            "requesting": self._requesting,
            "fence_floor": self._fence_floor,
        }

    def restore_flight_state(self, state: dict) -> None:
        """Exact inverse of :meth:`flight_state` (replay only)."""

        last = state.get("last")
        self._last = None if last is None else int(last)
        nxt = state.get("next")
        self._next = None if nxt is None else int(nxt)
        self._has_token = bool(state.get("has_token", False))
        self._in_cs = bool(state.get("in_cs", False))
        self._requesting = bool(state.get("requesting", False))
        self._fence_floor = int(state.get("fence_floor", 0))
        self._ctx = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<NaimiAutomaton node={self._node_id} lock={self._lock_id!r} "
            f"token={self._has_token} in_cs={self._in_cs} "
            f"requesting={self._requesting} last={self._last} "
            f"next={self._next}>"
        )

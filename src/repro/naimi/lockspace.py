"""Per-node multiplexer for many Naimi-Tréhel locks.

The *same-work* comparison in the paper's evaluation runs one Naimi token
per table entry, so a node participates in many independent instances of
the protocol.  ``NaimiLockSpace`` mirrors
:class:`repro.core.lockspace.LockSpace` for the baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..core.lockspace import TokenHomeFn, default_token_home
from ..core.messages import Envelope, LockId, NodeId
from .automaton import NaimiAutomaton, NaimiGrantListener, _noop_listener
from .messages import NaimiMessage


class NaimiLockSpace:
    """All Naimi automata hosted by one node, keyed by lock id."""

    def __init__(
        self,
        node_id: NodeId,
        token_home: TokenHomeFn = default_token_home,
        listener: NaimiGrantListener = _noop_listener,
    ) -> None:
        self._node_id = node_id
        self._token_home = token_home
        self._listener = listener
        self._automata: Dict[LockId, NaimiAutomaton] = {}
        #: Optional observability sink propagated to every automaton this
        #: space creates (set before first use; None = zero-cost no-op).
        self.obs = None
        #: Optional flight recorder, propagated the same way (see
        #: :class:`repro.obs.flightrec.FlightRecorder`).
        self.flightrec = None

    @property
    def node_id(self) -> NodeId:
        """This node's identity."""

        return self._node_id

    def automaton(self, lock_id: LockId) -> NaimiAutomaton:
        """Return (creating on first use) the automaton for *lock_id*."""

        existing = self._automata.get(lock_id)
        if existing is not None:
            return existing
        home = self._token_home(lock_id)
        automaton = NaimiAutomaton(
            node_id=self._node_id,
            lock_id=lock_id,
            last=None if home == self._node_id else home,
            listener=self._listener,
        )
        automaton.obs = self.obs
        automaton.flightrec = self.flightrec
        if self.flightrec is not None:
            self.flightrec.record_birth(lock_id, {"last": automaton.last})
        self._automata[lock_id] = automaton
        return automaton

    def request(self, lock_id: LockId, ctx: object = None) -> List[Envelope]:
        """Request *lock_id*; the grant arrives via the listener."""

        return self.automaton(lock_id).request(ctx)

    def release(self, lock_id: LockId) -> List[Envelope]:
        """Release *lock_id* (must be inside its critical section)."""

        return self.automaton(lock_id).release()

    def handle(self, message: NaimiMessage) -> List[Envelope]:
        """Route an incoming message to the automaton it concerns."""

        return self.automaton(message.lock_id).handle(message)

    def flight_state(self):
        """Whole-node state for flight-recorder checkpoints (pure read)."""

        return {
            "clock": 0,
            "locks": [
                [lock_id, self._automata[lock_id].flight_state()]
                for lock_id in sorted(self._automata, key=str)
            ],
        }

    def automata(self) -> Iterable[NaimiAutomaton]:
        """Iterate over every instantiated automaton (for monitors)."""

        return self._automata.values()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NaimiLockSpace node={self._node_id} locks={len(self._automata)}>"

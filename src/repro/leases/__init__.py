"""Lease-fenced lock holds (`repro.leases`).

The paper's protocol assumes lock holders stay reachable forever; a
holder isolated on the minority side of a partition therefore keeps its
granted modes indefinitely (docs/FAULTS.md §4 used to name this gap).
This package supplies the standard hardening: every granted hold carries
a **lease** — a deadline plus a monotonically increasing **fencing
token** minted from the lock's token epoch.  The holder renews the lease
by piggybacking it on its heartbeats; every peer mirrors the
advertisement in a remote :class:`LeaseTable`.  When the holder falls
silent past the deadline (plus a revoke margin) the hold is revoked with
a Rule-1-safe release replayed up the hierarchy, the lock's fence floor
is raised past the dead lease's token, and any later message presenting
the stale fencing token is rejected by all three protocol automata.

Every method takes an explicit ``now`` so the tables are pure functions
of their inputs: the clock-skew and frozen-clock tests drive them with
arbitrary timestamps, and the deterministic simulator drives them with
its own virtual clock.  Renewal never moves a deadline *backwards*, so a
skewed (earlier) renewal timestamp cannot shorten a lease.
"""

from .lease import (
    FENCING_EPOCH_SHIFT,
    Lease,
    LeaseConfig,
    LeaseTable,
    fencing_epoch,
    mint_fencing_token,
)

__all__ = [
    "FENCING_EPOCH_SHIFT",
    "Lease",
    "LeaseConfig",
    "LeaseTable",
    "fencing_epoch",
    "mint_fencing_token",
]

"""Leases and fencing tokens for granted lock holds.

A :class:`Lease` binds one node's hold on one lock to a deadline and a
fencing token.  Fencing tokens are minted from the lock's token epoch
(the recovery layer's incarnation counter) shifted past a process-local
serial, so they are strictly monotonic within an epoch and any token
minted under a later epoch dominates every earlier one — the property
fencing needs: a revoked holder's token is always below the floor the
revoker installs.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Optional, Tuple

#: Fencing tokens are ``((epoch + 1) << SHIFT) | serial``: the token
#: epoch occupies the high bits so a regeneration trumps every token of
#: the previous incarnation, and the low-bit serial keeps tokens of the
#: same epoch strictly increasing.
FENCING_EPOCH_SHIFT = 32

_fence_serial = itertools.count(1)


def mint_fencing_token(epoch: int) -> int:
    """Mint a fresh fencing token under token incarnation *epoch*."""

    return ((int(epoch) + 1) << FENCING_EPOCH_SHIFT) | next(_fence_serial)


def fencing_epoch(token: int) -> int:
    """Recover the token epoch a fencing token was minted under."""

    return (int(token) >> FENCING_EPOCH_SHIFT) - 1


@dataclasses.dataclass(frozen=True)
class LeaseConfig:
    """Timing policy for leases.

    ``duration`` is how long a lease lives past its last renewal; a
    holder that cannot reach a quorum for ``duration`` must consider its
    own leases void (self-fencing).  Peers wait an extra
    ``revoke_margin`` before revoking, so the holder always fences itself
    strictly before anyone revokes on its behalf — that ordering is what
    keeps the forced release Rule-1 safe without synchronized clocks.
    """

    duration: float = 6.0
    revoke_margin: float = 1.5

    @property
    def session_ttl(self) -> float:
        """How long a session survives without activity (reclaim window)."""

        return self.duration + self.revoke_margin


@dataclasses.dataclass
class Lease:
    """One node's leased hold on one lock."""

    lock: str
    mode: str
    holder: int
    token: int
    deadline: float
    renewals: int = 0
    grants: int = 0

    def active(self, now: float) -> bool:
        """True while the deadline has not passed."""

        return now < self.deadline

    def expired(self, now: float, margin: float = 0.0) -> bool:
        """True once *now* is past the deadline plus *margin*."""

        return now >= self.deadline + margin

    def to_payload(self) -> List[object]:
        """JSON-safe representation (heartbeats, WAL, health snapshots)."""

        return [self.lock, self.mode, int(self.holder), int(self.token)]


class LeaseTable:
    """Leases keyed by ``(lock, holder)``.

    One table instance tracks either a node's *own* leases (holder ==
    the node, renewed implicitly while it can reach a quorum) or its
    mirror of *remote* leases learned from peer heartbeats.  All
    mutators take an explicit ``now``; nothing here reads a clock.
    """

    def __init__(self, config: Optional[LeaseConfig] = None) -> None:
        self.config = config or LeaseConfig()
        self._leases: Dict[Tuple[str, int], Lease] = {}
        self.renewals = 0
        self.revoked = 0

    def __len__(self) -> int:
        return len(self._leases)

    def get(self, lock: str, holder: int) -> Optional[Lease]:
        """Return the lease *holder* has on *lock*, if any."""

        return self._leases.get((lock, holder))

    def grant(
        self, lock: str, mode: str, holder: int, token: int, now: float
    ) -> Lease:
        """Record a (re-)granted hold; refreshes an existing lease.

        A repeat grant on an already-leased lock keeps the strongest
        claim alive under the *newest* fencing token and pushes the
        deadline forward (never backwards).
        """

        key = (lock, holder)
        existing = self._leases.get(key)
        deadline = now + self.config.duration
        if existing is not None:
            existing.mode = mode
            existing.token = max(existing.token, int(token))
            existing.deadline = max(existing.deadline, deadline)
            existing.grants += 1
            return existing
        lease = Lease(
            lock=lock,
            mode=mode,
            holder=holder,
            token=int(token),
            deadline=deadline,
            grants=1,
        )
        self._leases[key] = lease
        return lease

    def renew(self, lock: str, holder: int, now: float) -> Optional[Lease]:
        """Extend a lease to ``now + duration`` (monotonic: never shrinks).

        A renewal stamped with an *earlier* clock (skew, frozen clock)
        therefore cannot shorten the lease; it is simply a no-op.
        """

        lease = self._leases.get((lock, holder))
        if lease is None:
            return None
        deadline = now + self.config.duration
        if deadline > lease.deadline:
            lease.deadline = deadline
        lease.renewals += 1
        self.renewals += 1
        return lease

    def observe(
        self, holder: int, advertised: Iterable[Iterable[object]], now: float
    ) -> int:
        """Mirror *holder*'s advertised lease set (heartbeat piggyback).

        Advertised entries are ``[lock, mode, holder, token]`` payloads.
        Entries the holder no longer advertises are dropped — a released
        hold must not linger and later trigger a spurious revocation of a
        *re-acquired* hold.  Returns the number of renewals applied.
        """

        seen = set()
        applied = 0
        for entry in advertised:
            lock, mode, _holder, token = entry
            lock = str(lock)
            seen.add(lock)
            existing = self._leases.get((lock, holder))
            if existing is None:
                self.grant(lock, str(mode), holder, int(token), now)
            else:
                existing.mode = str(mode)
                existing.token = max(existing.token, int(token))
                self.renew(lock, holder, now)
            applied += 1
        stale = [
            key
            for key in self._leases
            if key[1] == holder and key[0] not in seen
        ]
        for key in stale:
            del self._leases[key]
        return applied

    def drop(self, lock: str, holder: int) -> Optional[Lease]:
        """Remove and return the lease *holder* had on *lock*."""

        return self._leases.pop((lock, holder), None)

    def drop_holder(self, holder: int) -> List[Lease]:
        """Remove every lease of *holder* (restart, fence)."""

        keys = [key for key in self._leases if key[1] == holder]
        return [self._leases.pop(key) for key in keys]

    def clear(self) -> None:
        """Forget every lease (self-fence)."""

        self._leases.clear()

    def leases(self) -> List[Lease]:
        """Every lease, expired or not, in deterministic key order."""

        return [lease for _, lease in sorted(self._leases.items())]

    def active(self, now: float) -> List[Lease]:
        """Every lease whose deadline has not passed."""

        return [l for l in self._leases.values() if l.active(now)]

    def holder_active(self, lock: str, holder: int, now: float) -> bool:
        """True iff *holder* has an unexpired lease on *lock*.

        "Unexpired" includes the revoke margin: until the margin passes
        the holder's forced self-fence may still be pending, so its hold
        must keep pinning the copyset.
        """

        lease = self._leases.get((lock, holder))
        return lease is not None and not lease.expired(
            now, self.config.revoke_margin
        )

    def expired(self, now: float) -> List[Lease]:
        """Leases past deadline + revoke margin (ripe for revocation)."""

        return [
            l
            for l in self._leases.values()
            if l.expired(now, self.config.revoke_margin)
        ]

    def export(self) -> Tuple[Tuple[object, ...], ...]:
        """JSON-safe payload of every lease (deterministic order)."""

        return tuple(
            tuple(lease.to_payload())
            for _, lease in sorted(self._leases.items())
        )

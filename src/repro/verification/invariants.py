"""Runtime safety monitors for the locking protocols.

These monitors observe grant/release events as they happen (they plug into
the simulated and threaded clusters) and raise
:class:`~repro.errors.InvariantViolation` the instant a safety property
breaks — the ground truth behind the paper's correctness argument:

* :class:`CompatibilityMonitor` — at every instant, the multiset of modes
  held across all nodes on one lock is pairwise compatible (the
  generalized mutual exclusion property of Rule 1-4).
* :class:`MutualExclusionMonitor` — classic single-holder exclusion for
  the Naimi baseline.
* :class:`FifoObserver` — records grant order vs. request order so tests
  can quantify FIFO fairness (and demonstrate starvation when freezing is
  disabled in the ablation).
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from ..core.messages import LockId, NodeId
from ..core.modes import LockMode, compatible
from ..errors import InvariantViolation


class Monitor:
    """Interface implemented by every grant/release observer."""

    def on_request(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        """A node just issued a request for *lock_id* in *mode*."""

    def on_grant(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        """A node just acquired *lock_id* in *mode*."""

    def on_release(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        """A node just released one hold of *mode* on *lock_id*."""

    def on_crash(self, time: float, node: NodeId) -> None:
        """*node* crashed (fault injection): its holds vanish with it.

        Crash-induced hold disappearance is not a protocol violation, so
        monitors must forget the node's state rather than flag the holds
        as leaked at end of run.
        """

    def on_forced_release(
        self, time: float, node: NodeId, lock_id: LockId
    ) -> None:
        """*node*'s holds on *lock_id* were revoked by the lease layer.

        A lease expiry (self-fence on the holder, revocation on its
        peers) force-releases holds without the application calling
        ``release``.  Several peers revoke the same lease independently,
        and the holder may have released just before its peers revoked,
        so — unlike :meth:`on_release` — this must be idempotent: forget
        whatever holds remain, raise on nothing.
        """


class CompatibilityMonitor(Monitor):
    """Asserts pairwise compatibility of all concurrent holds per lock."""

    def __init__(self) -> None:
        self._holds: Dict[LockId, Counter] = defaultdict(Counter)
        self.max_concurrency: Dict[LockId, int] = defaultdict(int)
        self.grants = 0

    def on_grant(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        holds = self._holds[lock_id]
        for (held_node, held_mode), count in holds.items():
            if count <= 0:
                continue
            if not compatible(held_mode, mode):
                raise InvariantViolation(
                    f"t={time:.3f}: node {node} granted {mode} on "
                    f"{lock_id!r} while node {held_node} holds "
                    f"incompatible {held_mode}"
                )
        holds[(node, mode)] += 1
        self.grants += 1
        concurrency = sum(holds.values())
        if concurrency > self.max_concurrency[lock_id]:
            self.max_concurrency[lock_id] = concurrency

    def on_release(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        holds = self._holds[lock_id]
        if holds[(node, mode)] <= 0:
            raise InvariantViolation(
                f"t={time:.3f}: node {node} released {mode} on {lock_id!r} "
                "without holding it"
            )
        holds[(node, mode)] -= 1
        if holds[(node, mode)] == 0:
            del holds[(node, mode)]

    def on_crash(self, time: float, node: NodeId) -> None:
        for holds in self._holds.values():
            for key in [k for k in holds if k[0] == node]:
                del holds[key]

    def on_forced_release(
        self, time: float, node: NodeId, lock_id: LockId
    ) -> None:
        holds = self._holds[lock_id]
        for key in [k for k in holds if k[0] == node]:
            del holds[key]

    def current_holds(self, lock_id: LockId) -> List[Tuple[NodeId, LockMode]]:
        """Return the live (node, mode) holds of *lock_id*."""

        return [key for key, count in self._holds[lock_id].items() if count > 0]

    def assert_all_released(self) -> None:
        """Raise unless every hold has been released (end-of-run check)."""

        for lock_id, holds in self._holds.items():
            live = [key for key, count in holds.items() if count > 0]
            if live:
                raise InvariantViolation(
                    f"run ended with live holds on {lock_id!r}: {live}"
                )


class MutualExclusionMonitor(Monitor):
    """At most one holder at a time per lock (Naimi baseline property)."""

    def __init__(self) -> None:
        self._holder: Dict[LockId, Optional[NodeId]] = {}
        self.grants = 0

    def on_grant(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        holder = self._holder.get(lock_id)
        if holder is not None:
            raise InvariantViolation(
                f"t={time:.3f}: node {node} entered the CS of {lock_id!r} "
                f"while node {holder} is inside"
            )
        self._holder[lock_id] = node
        self.grants += 1

    def on_release(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        if self._holder.get(lock_id) != node:
            raise InvariantViolation(
                f"t={time:.3f}: node {node} left a CS of {lock_id!r} it "
                "does not hold"
            )
        self._holder[lock_id] = None

    def on_crash(self, time: float, node: NodeId) -> None:
        for lock_id, holder in self._holder.items():
            if holder == node:
                self._holder[lock_id] = None

    def on_forced_release(
        self, time: float, node: NodeId, lock_id: LockId
    ) -> None:
        if self._holder.get(lock_id) == node:
            self._holder[lock_id] = None

    def assert_all_released(self) -> None:
        """Raise unless every critical section has been exited."""

        live = {k: v for k, v in self._holder.items() if v is not None}
        if live:
            raise InvariantViolation(f"run ended inside critical sections: {live}")


@dataclasses.dataclass(frozen=True)
class GrantEvent:
    """One observed grant, used for fairness analysis."""

    time: float
    node: NodeId
    lock_id: LockId
    mode: LockMode


class FifoObserver(Monitor):
    """Records the grant sequence per lock for fairness analysis.

    The protocol's FIFO guarantee (Rules 4-6) is about *incompatible*
    requests: a request never waits forever behind a stream of later,
    compatible requests.  Tests use :meth:`longest_wait` and the grant log
    to quantify this, and the freezing ablation uses it to demonstrate
    starvation once Rule 6 is disabled.
    """

    def __init__(self) -> None:
        self.grant_log: Dict[LockId, List[GrantEvent]] = defaultdict(list)

    def on_grant(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        self.grant_log[lock_id].append(
            GrantEvent(time=time, node=node, lock_id=lock_id, mode=mode)
        )

    def grants_for(self, lock_id: LockId) -> List[GrantEvent]:
        """Return the grant sequence observed on *lock_id*."""

        return list(self.grant_log[lock_id])


class MonitorSet(Monitor):
    """Fans grant/release events out to several monitors."""

    def __init__(self, monitors: List[Monitor]) -> None:
        self.monitors = list(monitors)

    def on_request(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        for monitor in self.monitors:
            monitor.on_request(time, node, lock_id, mode)

    def on_grant(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        for monitor in self.monitors:
            monitor.on_grant(time, node, lock_id, mode)

    def on_release(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        for monitor in self.monitors:
            monitor.on_release(time, node, lock_id, mode)

    def on_crash(self, time: float, node: NodeId) -> None:
        for monitor in self.monitors:
            monitor.on_crash(time, node)

    def on_forced_release(
        self, time: float, node: NodeId, lock_id: LockId
    ) -> None:
        for monitor in self.monitors:
            monitor.on_forced_release(time, node, lock_id)

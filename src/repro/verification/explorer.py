"""Exhaustive small-configuration model exploration.

The stochastic simulator samples one interleaving per seed; this explorer
checks *every* interleaving of a small scenario: given a set of nodes and
a script of lock requests, it explores all orders in which in-flight
messages can be delivered (plus the release that follows each grant),
asserting at every step that

* concurrently granted modes are pairwise compatible (Rule 1),
* the run can always make progress (no deadlock), and
* every request is eventually granted in every terminal state.

Per-pair FIFO channel order is respected, matching the transports.  State
deduplication keeps the search tractable; scenarios with up to ~4 nodes
and ~6 requests explore in well under a second.

This is the tool that turns "the simulator never tripped the monitor"
into "no reachable interleaving of this scenario trips the monitor".
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.automaton import (
    FULL_PROTOCOL,
    HierarchicalLockAutomaton,
    ProtocolOptions,
)
from ..core.clock import LamportClock
from ..core.messages import Envelope, NodeId
from ..core.modes import LockMode, compatible
from ..errors import InvariantViolation

#: A scripted action: node *node* requests *mode* (release is implicit).
@dataclasses.dataclass(frozen=True)
class ScriptedRequest:
    """One scripted lock request; the grant triggers a matching release.

    With ``upgrade_after`` (only meaningful for ``U`` requests) the node
    performs a Rule 7 U→W upgrade after the grant, then releases ``W``.
    """

    node: NodeId
    mode: LockMode
    upgrade_after: bool = False


def per_node_scripts(
    script: Sequence[ScriptedRequest],
) -> Dict[NodeId, List[ScriptedRequest]]:
    """Group a script into per-node request sequences (issue order)."""

    grouped: Dict[NodeId, List[ScriptedRequest]] = defaultdict(list)
    for step in script:
        grouped[step.node].append(step)
    return dict(grouped)


@dataclasses.dataclass(frozen=True)
class ExplorationStats:
    """Outcome of an exhaustive exploration."""

    states_explored: int
    terminal_states: int
    max_frontier: int


class _World:
    """One concrete global state of the scenario (mutable, copyable)."""

    __slots__ = (
        "automata",
        "channels",
        "holds",
        "granted",
        "released",
        "progress",
        "upgrading",
        "sent_count",
        "log",
    )

    def __init__(
        self,
        automata: Dict[NodeId, HierarchicalLockAutomaton],
        channels: Dict[Tuple[NodeId, NodeId], List],
        holds: List[Tuple[NodeId, LockMode]],
        granted: int,
        released: int,
        progress: Dict[NodeId, int],
        upgrading: Dict[NodeId, bool],
        log: Tuple[str, ...],
        sent_count: int = 0,
    ) -> None:
        self.automata = automata
        self.channels = channels
        self.holds = holds
        self.granted = granted
        self.released = released
        self.progress = progress
        self.upgrading = upgrading
        self.sent_count = sent_count
        self.log = log


class ModelExplorer:
    """Explores every interleaving of a scripted single-lock scenario."""

    LOCK = "lock"

    def __init__(
        self,
        num_nodes: int,
        script: Sequence[ScriptedRequest],
        options: ProtocolOptions = FULL_PROTOCOL,
        max_states: int = 2_000_000,
        duplicate_nth: Optional[int] = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.script = list(script)
        self.scripts = per_node_scripts(self.script)
        self.options = options
        self.max_states = max_states
        #: With ``duplicate_nth=k`` the k-th message sent (0-based, over
        #: the whole run) is enqueued twice on its channel — the
        #: FIFO-consistent model of a retransmission duplicate, which a
        #: per-pair-ordered transport delivers right behind the original.
        #: Meant for ``recovery=True`` options: it proves the dedup layer
        #: keeps Rule 1 over every interleaving around the duplicate.
        self.duplicate_nth = duplicate_nth

    # -- construction of the initial world --------------------------------

    def _fresh_world(self) -> _World:
        automata: Dict[NodeId, HierarchicalLockAutomaton] = {}
        for node in range(self.num_nodes):
            automata[node] = HierarchicalLockAutomaton(
                node_id=node,
                lock_id=self.LOCK,
                clock=LamportClock(),
                parent=None if node == 0 else 0,
                has_token=node == 0,
                options=self.options,
            )
        world = _World(
            automata=automata,
            channels=defaultdict(list),
            holds=[],
            granted=0,
            released=0,
            progress={node: 0 for node in self.scripts},
            upgrading={node: False for node in self.scripts},
            log=(),
        )
        # Requests are issued as explored moves: each node runs its script
        # strictly sequentially (request → grant → release → next), and
        # the issue points interleave freely with message deliveries.
        for node, automaton in automata.items():
            automaton._listener = self._listener_for(world, node)
        return world

    def _listener_for(self, world: _World, node: NodeId):
        def listener(lock_id, mode, ctx):
            self._on_grant(world, node, mode, ctx)

        return listener

    # -- grant/hold bookkeeping -------------------------------------------

    def _on_grant(
        self, world: _World, node: NodeId, mode: LockMode, ctx: object = None
    ) -> None:
        if ctx == "upgrade":
            # Rule 7 completion: the U hold converts atomically to W.
            world.holds.remove((node, LockMode.U))
            world.upgrading[node] = False
        for holder, held_mode in world.holds:
            if not compatible(held_mode, mode):
                raise InvariantViolation(
                    f"{mode} granted to node {node} while node {holder} "
                    f"holds {held_mode}\ntrace:\n" + "\n".join(world.log)
                )
        world.holds.append((node, mode))
        if ctx != "upgrade":
            world.granted += 1

    def _enqueue(
        self, world: _World, sender: NodeId, envelopes: List[Envelope]
    ) -> None:
        for envelope in envelopes:
            channel = world.channels[(sender, envelope.dest)]
            channel.append(envelope.message)
            if world.sent_count == self.duplicate_nth:
                channel.append(envelope.message)
            world.sent_count += 1

    # -- state copying / hashing ------------------------------------------

    def _clone(self, world: _World) -> _World:
        import copy

        automata = {}
        for node, automaton in world.automata.items():
            clone = copy.deepcopy(automaton)
            automata[node] = clone
        new_world = _World(
            automata=automata,
            channels=defaultdict(
                list, {k: list(v) for k, v in world.channels.items()}
            ),
            holds=list(world.holds),
            granted=world.granted,
            released=world.released,
            progress=dict(world.progress),
            upgrading=dict(world.upgrading),
            log=world.log,
            sent_count=world.sent_count,
        )
        for node, automaton in automata.items():
            automaton._listener = self._listener_for(new_world, node)
        return new_world

    def _signature(self, world: _World) -> Tuple:
        autos = []
        for node in sorted(world.automata):
            a = world.automata[node]
            autos.append(
                (
                    node,
                    a.has_token,
                    a.parent,
                    tuple(sorted(a.children.items(), key=lambda kv: kv[0])),
                    tuple(sorted(a.held_modes.items(), key=lambda kv: kv[0].value)),
                    a.pending_mode,
                    tuple(
                        (q.origin, q.mode, q.upgrade) for q in a.queued_requests
                    ),
                    tuple(sorted(m.value for m in a.frozen_modes)),
                    # Recovery-mode state: the dedup memory and token
                    # epoch change how future messages are handled, so
                    # worlds differing only here must not be merged.
                    # Constant for non-recovery options.
                    a.recent_grant_keys,
                    a.token_epoch,
                )
            )
        channels = tuple(
            (pair, tuple(self._msg_sig(m) for m in msgs))
            for pair, msgs in sorted(world.channels.items())
            if msgs
        )
        holds = tuple(sorted((n, m.value) for n, m in world.holds))
        progress = tuple(sorted(world.progress.items()))
        upgrading = tuple(sorted(world.upgrading.items()))
        signature = (
            tuple(autos),
            channels,
            holds,
            world.granted,
            world.released,
            progress,
            upgrading,
        )
        if self.duplicate_nth is not None:
            # Worlds on either side of the duplication point behave
            # differently even with identical automata; once the
            # duplicate has fired the exact count no longer matters.
            signature += (min(world.sent_count, self.duplicate_nth + 1),)
        return signature

    @staticmethod
    def _msg_sig(message) -> Tuple:
        return (
            type(message).__name__,
            getattr(message, "mode", None),
            getattr(message, "origin", None),
            getattr(message, "new_mode", None),
            getattr(message, "granted_mode", None),
            tuple(sorted(m.value for m in getattr(message, "frozen", ()))),
            getattr(message, "attachment_seq", None),
        )

    # -- the search ---------------------------------------------------------

    def explore(self) -> ExplorationStats:
        """Run the exhaustive search; raises on any violated invariant."""

        initial = self._fresh_world()
        seen: Set[Tuple] = set()
        frontier: List[_World] = [initial]
        states = 0
        terminals = 0
        max_frontier = 1
        while frontier:
            max_frontier = max(max_frontier, len(frontier))
            world = frontier.pop()
            signature = self._signature(world)
            if signature in seen:
                continue
            seen.add(signature)
            states += 1
            if states > self.max_states:
                raise InvariantViolation(
                    f"state-space budget exceeded ({self.max_states})"
                )
            moves = self._enabled_moves(world)
            if not moves:
                terminals += 1
                self._check_terminal(world)
                continue
            for move_name, apply_move in moves:
                branch = self._clone(world)
                apply_move(branch)
                branch.log = branch.log + (move_name,)
                frontier.append(branch)
        return ExplorationStats(
            states_explored=states,
            terminal_states=terminals,
            max_frontier=max_frontier,
        )

    def _enabled_moves(self, world: _World):
        moves = []
        # Deliver the head message of any non-empty channel (FIFO per pair).
        for pair in sorted(k for k, v in world.channels.items() if v):
            sender, dest = pair

            def deliver(branch: _World, pair=pair) -> None:
                message = branch.channels[pair].pop(0)
                automaton = branch.automata[pair[1]]
                out = automaton.handle(message)
                self._enqueue(branch, pair[1], out)

            moves.append((f"deliver {sender}->{dest}", deliver))
        # Release any current hold (a U hold destined for upgrade must
        # upgrade, not release; and an in-flight upgrade pins its U).
        for index, (node, mode) in enumerate(world.holds):
            if mode is LockMode.U and world.upgrading[node]:
                continue

            def release(branch: _World, index=index) -> None:
                node, mode = branch.holds.pop(index)
                automaton = branch.automata[node]
                out = automaton.release(mode)
                branch.released += 1
                self._enqueue(branch, node, out)

            moves.append((f"release {node}:{mode}", release))
        # Fire a scheduled Rule 7 upgrade.
        for node, flagged in sorted(world.upgrading.items()):
            if not flagged:
                continue
            automaton = world.automata[node]
            if automaton.pending_mode is not LockMode.NONE:
                continue  # upgrade request already queued
            if automaton.held_modes.get(LockMode.U, 0) < 1:
                continue

            def do_upgrade(branch: _World, node=node) -> None:
                out = branch.automata[node].upgrade(ctx="upgrade")
                self._enqueue(branch, node, out)

            moves.append((f"upgrade {node}", do_upgrade))
        # Issue a node's next scripted request (strictly sequential per
        # node: the previous one must be granted and released).
        for node, steps in sorted(self.scripts.items()):
            position = world.progress[node]
            if position >= len(steps):
                continue
            automaton = world.automata[node]
            if automaton.pending_mode is not LockMode.NONE:
                continue
            if any(holder == node for holder, _mode in world.holds):
                continue
            if world.upgrading[node]:
                continue

            def issue(branch: _World, node=node, position=position) -> None:
                step = self.scripts[node][position]
                branch.progress[node] = position + 1
                if step.upgrade_after:
                    branch.upgrading[node] = True
                out = branch.automata[node].request(step.mode, ctx=position)
                self._enqueue(branch, node, out)

            moves.append((f"issue {node}:{steps[position].mode}", issue))
        return moves

    def _check_terminal(self, world: _World) -> None:
        if world.granted != len(self.script):
            raise InvariantViolation(
                f"terminal state with {world.granted}/{len(self.script)} "
                "grants — a request starved\ntrace:\n" + "\n".join(world.log)
            )
        if world.holds:
            raise InvariantViolation("terminal state with live holds")
        tokens = [n for n, a in world.automata.items() if a.has_token]
        if len(tokens) != 1:
            raise InvariantViolation(
                f"terminal state with {len(tokens)} token nodes"
            )


def explore_scenario(
    num_nodes: int,
    requests: Sequence[Tuple],
    options: ProtocolOptions = FULL_PROTOCOL,
    max_states: int = 2_000_000,
    duplicate_nth: Optional[int] = None,
) -> ExplorationStats:
    """Convenience wrapper: explore ``[(node, mode[, upgrade]), ...]``."""

    script = [
        ScriptedRequest(node=r[0], mode=r[1],
                        upgrade_after=bool(r[2]) if len(r) > 2 else False)
        for r in requests
    ]
    explorer = ModelExplorer(
        num_nodes, script, options=options, max_states=max_states,
        duplicate_nth=duplicate_nth,
    )
    return explorer.explore()

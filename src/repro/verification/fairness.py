"""Fairness analysis: quantifying the FIFO guarantee of Rules 4-6.

The paper's freezing mechanism exists to stop *overtaking*: a request
that conflicts with a queued one must not be granted first, or the queued
request can starve (§3.3).  This module measures overtaking directly from
the per-request records a run collects:

* request ``s`` **bypasses** request ``r`` when ``s`` was issued after
  ``r`` but granted before ``r``, and the two modes conflict (compatible
  overtaking is exactly the concurrency the protocol is allowed — and
  supposed — to exploit);
* a request's **bypass count** is how many such ``s`` exist;
* :func:`analyze` summarizes bypass counts per run, giving the fairness
  numbers the freezing ablation (A1) reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..core.modes import LockMode, conflicts
from ..metrics.collector import RequestRecord

#: Request kinds that map to a lock mode (the upgrade kind means W).
_KIND_TO_MODE = {
    "IR": LockMode.IR,
    "R": LockMode.R,
    "U": LockMode.U,
    "IW": LockMode.IW,
    "W": LockMode.W,
    "U->W": LockMode.W,
}


def kind_to_mode(kind: str) -> Optional[LockMode]:
    """Map a request-record kind to its lock mode (None if not mode-like)."""

    return _KIND_TO_MODE.get(kind)


@dataclasses.dataclass(frozen=True)
class FairnessReport:
    """Overtaking statistics for one run."""

    requests: int
    conflicting_pairs: int
    bypasses: int
    max_bypass_per_request: int
    mean_bypass_per_request: float

    def __str__(self) -> str:
        return (
            f"requests={self.requests} conflicting_pairs="
            f"{self.conflicting_pairs} bypasses={self.bypasses} "
            f"max/req={self.max_bypass_per_request} "
            f"mean/req={self.mean_bypass_per_request:.3f}"
        )


def analyze(records: Sequence[RequestRecord]) -> FairnessReport:
    """Count conflicting-mode overtakes among *records*.

    O(n²) over the mode-like records of a run — fine for the run sizes
    the ablations use; the records are first sorted by issue time so the
    inner loop only scans later issues.
    """

    moded = [
        (record, kind_to_mode(record.kind))
        for record in records
        if kind_to_mode(record.kind) is not None
    ]
    moded.sort(key=lambda pair: pair[0].issued_at)
    bypass_counts: List[int] = [0] * len(moded)
    conflicting_pairs = 0
    for i, (earlier, earlier_mode) in enumerate(moded):
        for j in range(i + 1, len(moded)):
            later, later_mode = moded[j]
            if later.lock != earlier.lock:
                continue  # Different locks never conflict.
            if not conflicts(earlier_mode, later_mode):
                continue
            conflicting_pairs += 1
            if later.granted_at < earlier.granted_at:
                bypass_counts[i] += 1
    total = sum(bypass_counts)
    return FairnessReport(
        requests=len(moded),
        conflicting_pairs=conflicting_pairs,
        bypasses=total,
        max_bypass_per_request=max(bypass_counts) if bypass_counts else 0,
        mean_bypass_per_request=total / len(moded) if moded else 0.0,
    )


def bypass_histogram(records: Sequence[RequestRecord]) -> Dict[int, int]:
    """Histogram of per-request bypass counts (0 → fair-served)."""

    moded = [
        (record, kind_to_mode(record.kind))
        for record in records
        if kind_to_mode(record.kind) is not None
    ]
    moded.sort(key=lambda pair: pair[0].issued_at)
    histogram: Dict[int, int] = {}
    for i, (earlier, earlier_mode) in enumerate(moded):
        count = 0
        for later, later_mode in moded[i + 1 :]:
            if (
                later.lock == earlier.lock
                and conflicts(earlier_mode, later_mode)
                and later.granted_at < earlier.granted_at
            ):
                count += 1
        histogram[count] = histogram.get(count, 0) + 1
    return histogram

"""Exhaustive exploration of multi-granularity (multi-lock) scenarios.

:mod:`repro.verification.explorer` checks every interleaving of a single
lock; this module does the same for *hierarchical operations* that chain
acquisitions across locks — e.g. ``[(table, IW), (entry, W)]`` — which is
how the protocol is actually used (§3.1).  Besides per-lock safety it
checks the property single-lock exploration cannot: that the multi-lock
acquisition discipline (ancestors first, leaf last, release in reverse)
never deadlocks under any message interleaving.

An operation is a list of ``(lock, mode)`` steps acquired in order and
released in reverse; each node runs its operations sequentially.  Moves
explored: deliver any channel head (per-pair FIFO), issue a node's next
acquisition, or retire a node's completed operation (releasing its locks
leaf-first).
"""

from __future__ import annotations

import copy
import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.automaton import FULL_PROTOCOL, ProtocolOptions
from ..core.lockspace import LockSpace
from ..core.messages import Envelope, LockId, NodeId
from ..core.modes import LockMode, compatible
from ..errors import InvariantViolation

#: One hierarchical operation: ordered (lock, mode) acquisitions.
Operation = Tuple[Tuple[LockId, LockMode], ...]


@dataclasses.dataclass(frozen=True)
class MultiLockStats:
    """Outcome of an exhaustive multi-lock exploration."""

    states_explored: int
    terminal_states: int


class _World:
    __slots__ = (
        "spaces",
        "channels",
        "holds",
        "progress",
        "step",
        "waiting",
        "log",
    )

    def __init__(self, spaces, channels, holds, progress, step, waiting, log):
        self.spaces: Dict[NodeId, LockSpace] = spaces
        self.channels = channels
        self.holds: List[Tuple[NodeId, LockId, LockMode]] = holds
        self.progress: Dict[NodeId, int] = progress   # finished ops
        self.step: Dict[NodeId, int] = step           # acquisitions done
        self.waiting: Dict[NodeId, bool] = waiting    # grant outstanding
        self.log: Tuple[str, ...] = log


class MultiLockExplorer:
    """Explores every interleaving of hierarchical operations."""

    def __init__(
        self,
        num_nodes: int,
        scripts: Dict[NodeId, Sequence[Operation]],
        options: ProtocolOptions = FULL_PROTOCOL,
        max_states: int = 2_000_000,
    ) -> None:
        self.num_nodes = num_nodes
        self.scripts = {node: list(ops) for node, ops in scripts.items()}
        self.options = options
        self.max_states = max_states
        self._total_acquisitions = sum(
            len(op) for ops in self.scripts.values() for op in ops
        )

    # -- world plumbing ----------------------------------------------------

    def _fresh_world(self) -> _World:
        spaces: Dict[NodeId, LockSpace] = {}
        world = _World(
            spaces=spaces,
            channels=defaultdict(list),
            holds=[],
            progress={node: 0 for node in self.scripts},
            step={node: 0 for node in self.scripts},
            waiting={node: False for node in self.scripts},
            log=(),
        )
        for node in range(self.num_nodes):
            spaces[node] = LockSpace(
                node_id=node,
                listener=self._listener_for(world, node),
                options=self.options,
            )
        return world

    def _listener_for(self, world: _World, node: NodeId):
        def listener(lock_id, mode, ctx):
            for holder, held_lock, held_mode in world.holds:
                if held_lock == lock_id and not compatible(held_mode, mode):
                    raise InvariantViolation(
                        f"{mode} on {lock_id!r} granted to node {node} while "
                        f"node {holder} holds {held_mode}\ntrace:\n"
                        + "\n".join(world.log)
                    )
            world.holds.append((node, lock_id, mode))
            world.waiting[node] = False

        return listener

    def _rebind(self, world: _World) -> None:
        for node, space in world.spaces.items():
            listener = self._listener_for(world, node)
            space._listener = listener
            for automaton in space.automata():
                automaton._listener = listener

    def _clone(self, world: _World) -> _World:
        spaces = {n: copy.deepcopy(s) for n, s in world.spaces.items()}
        new_world = _World(
            spaces=spaces,
            channels=defaultdict(
                list, {k: list(v) for k, v in world.channels.items()}
            ),
            holds=list(world.holds),
            progress=dict(world.progress),
            step=dict(world.step),
            waiting=dict(world.waiting),
            log=world.log,
        )
        self._rebind(new_world)
        return new_world

    def _enqueue(self, world: _World, sender: NodeId, out: List[Envelope]):
        for envelope in out:
            world.channels[(sender, envelope.dest)].append(envelope.message)

    def _signature(self, world: _World) -> Tuple:
        autos = []
        for node in sorted(world.spaces):
            space = world.spaces[node]
            for automaton in sorted(space.automata(), key=lambda a: a.lock_id):
                autos.append(
                    (
                        node,
                        automaton.lock_id,
                        automaton.has_token,
                        automaton.parent,
                        tuple(sorted(automaton.children.items())),
                        tuple(
                            sorted(
                                automaton.held_modes.items(),
                                key=lambda kv: kv[0].value,
                            )
                        ),
                        automaton.pending_mode,
                        tuple(
                            (q.origin, q.mode, q.upgrade)
                            for q in automaton.queued_requests
                        ),
                        tuple(sorted(m.value for m in automaton.frozen_modes)),
                    )
                )
        channels = tuple(
            (
                pair,
                tuple(
                    (
                        type(m).__name__,
                        m.lock_id,
                        getattr(m, "mode", None),
                        getattr(m, "origin", None),
                        getattr(m, "new_mode", None),
                        getattr(m, "granted_mode", None),
                        getattr(m, "attachment_seq", None),
                        tuple(sorted(x.value for x in getattr(m, "frozen", ()))),
                    )
                    for m in msgs
                ),
            )
            for pair, msgs in sorted(world.channels.items())
            if msgs
        )
        return (
            tuple(autos),
            channels,
            tuple(sorted((n, l, m.value) for n, l, m in world.holds)),
            tuple(sorted(world.progress.items())),
            tuple(sorted(world.step.items())),
            tuple(sorted(world.waiting.items())),
        )

    # -- search --------------------------------------------------------------

    def explore(self) -> MultiLockStats:
        """Run the exhaustive search; raises on violations or deadlock."""

        frontier = [self._fresh_world()]
        seen: Set[Tuple] = set()
        states = 0
        terminals = 0
        while frontier:
            world = frontier.pop()
            signature = self._signature(world)
            if signature in seen:
                continue
            seen.add(signature)
            states += 1
            if states > self.max_states:
                raise InvariantViolation(
                    f"state-space budget exceeded ({self.max_states})"
                )
            moves = self._enabled_moves(world)
            if not moves:
                terminals += 1
                self._check_terminal(world)
                continue
            for name, apply_move in moves:
                branch = self._clone(world)
                apply_move(branch)
                branch.log = branch.log + (name,)
                frontier.append(branch)
        return MultiLockStats(states_explored=states, terminal_states=terminals)

    def _current_op(self, node: NodeId, world: _World) -> Optional[Operation]:
        ops = self.scripts.get(node, [])
        index = world.progress[node]
        return ops[index] if index < len(ops) else None

    def _enabled_moves(self, world: _World):
        moves = []
        for pair in sorted(k for k, v in world.channels.items() if v):

            def deliver(branch: _World, pair=pair) -> None:
                message = branch.channels[pair].pop(0)
                out = branch.spaces[pair[1]].handle(message)
                self._enqueue(branch, pair[1], out)

            moves.append((f"deliver {pair[0]}->{pair[1]}", deliver))
        for node in sorted(self.scripts):
            if world.waiting[node]:
                continue
            op = self._current_op(node, world)
            if op is None:
                continue
            step = world.step[node]
            if step < len(op):
                lock_id, mode = op[step]

                def issue(branch: _World, node=node, lock_id=lock_id,
                          mode=mode) -> None:
                    branch.waiting[node] = True
                    branch.step[node] += 1
                    out = branch.spaces[node].request(lock_id, mode)
                    self._enqueue(branch, node, out)

                moves.append((f"issue {node}:{lock_id}:{mode}", issue))
            else:

                def retire(branch: _World, node=node, op=op) -> None:
                    for lock_id, mode in reversed(op):
                        branch.holds.remove((node, lock_id, mode))
                        out = branch.spaces[node].release(lock_id, mode)
                        self._enqueue(branch, node, out)
                    branch.progress[node] += 1
                    branch.step[node] = 0

                moves.append((f"retire {node}", retire))
        return moves

    def _check_terminal(self, world: _World) -> None:
        unfinished = {
            node: world.progress[node]
            for node in self.scripts
            if world.progress[node] < len(self.scripts[node])
        }
        if unfinished or any(world.waiting.values()):
            raise InvariantViolation(
                "deadlocked terminal state: unfinished="
                f"{unfinished} waiting="
                f"{[n for n, w in world.waiting.items() if w]}\ntrace:\n"
                + "\n".join(world.log)
            )
        if world.holds:
            raise InvariantViolation("terminal state with live holds")


def explore_hierarchical(
    num_nodes: int,
    scripts: Dict[NodeId, Sequence[Operation]],
    options: ProtocolOptions = FULL_PROTOCOL,
    max_states: int = 2_000_000,
) -> MultiLockStats:
    """Convenience wrapper around :class:`MultiLockExplorer`."""

    explorer = MultiLockExplorer(
        num_nodes, scripts, options=options, max_states=max_states
    )
    return explorer.explore()

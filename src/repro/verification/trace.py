"""Structured run tracing: record, export, reload, summarize.

A :class:`TraceRecorder` plugs into any cluster as a monitor (and
optionally into the network as a message observer) and captures a
structured, ordered event log.  Traces serialize to JSON-lines for
offline analysis and reload into the same event objects, so a failing
seed's run can be archived next to a bug report and re-examined without
re-running the simulation.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, IO, Iterable, List, Optional

from ..core.messages import LockId, NodeId
from ..core.modes import LockMode
from .invariants import Monitor

#: Event categories recorded.
REQUEST, GRANT, RELEASE, MESSAGE = "request", "grant", "release", "message"


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str               # request | grant | release | message
    node: NodeId                # requester/holder, or message sender
    lock_id: LockId             # lock concerned ("" for unknown)
    mode: Optional[LockMode]    # mode concerned (None for messages)
    detail: str = ""            # message type / free-form

    def to_json(self) -> str:
        """Serialize to one JSON line."""

        return json.dumps(
            {
                "t": self.time,
                "cat": self.category,
                "node": self.node,
                "lock": self.lock_id,
                "mode": self.mode.value if self.mode is not None else None,
                "detail": self.detail,
            }
        )

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        """Parse one JSON line back into an event."""

        raw = json.loads(line)
        mode = LockMode(raw["mode"]) if raw["mode"] is not None else None
        return TraceEvent(
            time=raw["t"],
            category=raw["cat"],
            node=raw["node"],
            lock_id=raw["lock"],
            mode=mode,
            detail=raw.get("detail", ""),
        )


class TraceRecorder(Monitor):
    """Records request/grant/release (and optionally wire) events."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    # -- monitor interface -------------------------------------------------

    def on_request(self, time, node, lock_id, mode) -> None:
        self.events.append(
            TraceEvent(time=time, category=REQUEST, node=node,
                       lock_id=lock_id, mode=mode)
        )

    def on_grant(self, time, node, lock_id, mode) -> None:
        self.events.append(
            TraceEvent(time=time, category=GRANT, node=node,
                       lock_id=lock_id, mode=mode)
        )

    def on_release(self, time, node, lock_id, mode) -> None:
        self.events.append(
            TraceEvent(time=time, category=RELEASE, node=node,
                       lock_id=lock_id, mode=mode)
        )

    # -- network observer (optional second hook) ----------------------------

    def message_observer(self, clock) -> "callable":
        """Build a network observer stamping events with *clock()* time."""

        def observe(sender: NodeId, dest: NodeId, message) -> None:
            self.events.append(
                TraceEvent(
                    time=clock(),
                    category=MESSAGE,
                    node=sender,
                    lock_id=getattr(message, "lock_id", ""),
                    mode=None,
                    detail=f"{type(message).__name__}->{dest}",
                )
            )

        return observe

    # -- persistence ---------------------------------------------------------

    def dump(self, stream: IO[str]) -> int:
        """Write the trace as JSON lines; returns the event count."""

        for event in self.events:
            stream.write(event.to_json())
            stream.write("\n")
        return len(self.events)

    @staticmethod
    def load(stream: IO[str]) -> List[TraceEvent]:
        """Read a JSON-lines trace back."""

        return [
            TraceEvent.from_json(line)
            for line in stream
            if line.strip()
        ]

    # -- analysis --------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Event counts by category."""

        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def events_for_lock(self, lock_id: LockId) -> List[TraceEvent]:
        """Chronological events touching *lock_id*."""

        return [e for e in self.events if e.lock_id == lock_id]

    def grant_latencies(self) -> List[float]:
        """Per-request latency (request → grant pairing per node+lock)."""

        pending: Dict[tuple, float] = {}
        latencies: List[float] = []
        for event in self.events:
            key = (event.node, event.lock_id)
            if event.category == REQUEST:
                pending[key] = event.time
            elif event.category == GRANT and key in pending:
                latencies.append(event.time - pending.pop(key))
        return latencies

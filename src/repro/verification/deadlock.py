"""Wait-for-graph deadlock detection for lock-service deployments.

The protocol itself is deadlock-free per lock (FIFO queues always drain),
but *applications* can still deadlock across locks by acquiring them in
conflicting orders while holding others — exactly why Naimi same-work
acquires entry tokens in a fixed global order, and why the hierarchy
prescribes ancestors-before-descendants.

:class:`WaitForGraphMonitor` plugs into a cluster like any monitor and
maintains the classic wait-for graph: an edge ``A → B`` when node ``A``
waits for a lock in a mode conflicting with a mode node ``B`` currently
holds.  :meth:`find_deadlock` reports a cycle (the deadlocked node set
and the locks involved) the moment one exists, and
:class:`DeadlockWatchdog` polls it from a daemon thread for threaded
deployments.
"""

from __future__ import annotations

import dataclasses
import threading
import time as _time
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from ..core.messages import LockId, NodeId
from ..core.modes import LockMode, conflicts
from .invariants import Monitor


@dataclasses.dataclass(frozen=True)
class Deadlock:
    """A detected wait-for cycle."""

    nodes: Tuple[NodeId, ...]
    locks: Tuple[LockId, ...]

    def __str__(self) -> str:
        chain = " -> ".join(str(node) for node in self.nodes)
        return f"deadlock cycle [{chain}] over locks {list(self.locks)}"


class WaitForGraphMonitor(Monitor):
    """Tracks who waits for whom, per lock and mode."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # node → (lock, mode) it is currently waiting for (one per node
        # per lock; nested waits across locks are tracked independently).
        self._waits: Dict[NodeId, Dict[LockId, LockMode]] = defaultdict(dict)
        # lock → {(node, mode)} currently held.
        self._holds: Dict[LockId, Set[Tuple[NodeId, LockMode]]] = defaultdict(set)

    # -- monitor events ----------------------------------------------------

    def on_request(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        with self._lock:
            self._waits[node][lock_id] = mode

    def on_grant(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        with self._lock:
            self._waits[node].pop(lock_id, None)
            self._holds[lock_id].add((node, mode))

    def on_release(
        self, time: float, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        with self._lock:
            self._holds[lock_id].discard((node, mode))

    # -- analysis ------------------------------------------------------------

    def waiting_nodes(self) -> List[NodeId]:
        """Nodes currently blocked on at least one lock."""

        with self._lock:
            return [node for node, waits in self._waits.items() if waits]

    def _edges(self) -> Dict[NodeId, Set[Tuple[NodeId, LockId]]]:
        edges: Dict[NodeId, Set[Tuple[NodeId, LockId]]] = defaultdict(set)
        for waiter, waits in self._waits.items():
            for lock_id, wanted in waits.items():
                for holder, held in self._holds[lock_id]:
                    if holder != waiter and conflicts(held, wanted):
                        edges[waiter].add((holder, lock_id))
        return edges

    def find_deadlock(self) -> Optional[Deadlock]:
        """Return a wait-for cycle if one exists right now.

        A positive result is definitive for the snapshot taken; transient
        in-flight grants can only *remove* edges, so a reported cycle on a
        quiescent-enough system is a real deadlock.
        """

        with self._lock:
            edges = self._edges()
        color: Dict[NodeId, int] = {}
        stack_locks: Dict[NodeId, LockId] = {}
        path: List[NodeId] = []

        def visit(node: NodeId) -> Optional[List[NodeId]]:
            color[node] = 1
            path.append(node)
            for successor, lock_id in sorted(edges.get(node, ())):
                stack_locks[node] = lock_id
                state = color.get(successor, 0)
                if state == 1:
                    return path[path.index(successor):]
                if state == 0:
                    cycle = visit(successor)
                    if cycle is not None:
                        return cycle
            color[node] = 2
            path.pop()
            return None

        for start in sorted(edges):
            if color.get(start, 0) == 0:
                cycle = visit(start)
                if cycle is not None:
                    locks = tuple(
                        stack_locks[node] for node in cycle if node in stack_locks
                    )
                    return Deadlock(nodes=tuple(cycle), locks=locks)
        return None


class DeadlockWatchdog:
    """Polls a :class:`WaitForGraphMonitor` from a daemon thread.

    A cycle must persist across two consecutive polls before the callback
    fires, filtering out snapshots taken mid-grant.

    With an *obs* sink attached, a confirmed cycle is also emitted as a
    ``fault("deadlock")`` event — which is how application deadlocks
    reach ``--trace-out`` traces, ``repro report`` fault tables and the
    live monitor's audit verdict.
    """

    def __init__(
        self,
        monitor: WaitForGraphMonitor,
        on_deadlock,
        poll_interval: float = 0.05,
        obs=None,
    ) -> None:
        self._monitor = monitor
        self._on_deadlock = on_deadlock
        self._poll_interval = poll_interval
        self._obs = obs
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Start polling."""

        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-deadlock-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop polling and join the thread."""

        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        previous: Optional[Deadlock] = None
        while not self._stop.wait(self._poll_interval):
            found = self._monitor.find_deadlock()
            if found is not None and previous is not None and (
                set(found.nodes) == set(previous.nodes)
            ):
                if self._obs is not None:
                    self._obs.fault("deadlock")
                self._on_deadlock(found)
                return
            previous = found

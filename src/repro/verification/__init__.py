"""Correctness tooling: monitors, fairness, deadlock, traces, explorers."""

from .deadlock import Deadlock, DeadlockWatchdog, WaitForGraphMonitor
from .explorer import ExplorationStats, ModelExplorer, explore_scenario
from .fairness import FairnessReport, analyze, bypass_histogram
from .invariants import (
    CompatibilityMonitor,
    FifoObserver,
    GrantEvent,
    Monitor,
    MonitorSet,
    MutualExclusionMonitor,
)
from .multilock import MultiLockExplorer, MultiLockStats, explore_hierarchical
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "CompatibilityMonitor",
    "Deadlock",
    "DeadlockWatchdog",
    "ExplorationStats",
    "FairnessReport",
    "FifoObserver",
    "GrantEvent",
    "ModelExplorer",
    "Monitor",
    "MonitorSet",
    "MultiLockExplorer",
    "MultiLockStats",
    "MutualExclusionMonitor",
    "TraceEvent",
    "TraceRecorder",
    "WaitForGraphMonitor",
    "analyze",
    "bypass_histogram",
    "explore_hierarchical",
    "explore_scenario",
]

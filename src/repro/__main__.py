"""Command-line driver: ``python -m repro <experiment> [--quick]``.

Runs any of the paper's experiments from the shell:

* ``tables``   — regenerate and verify Tables 1(a)-2(b),
* ``fig5``     — Figure 5, message overhead vs. nodes,
* ``fig6``     — Figure 6, latency factor vs. nodes,
* ``fig7``     — Figure 7, message-type breakdown,
* ``headline`` — the §6 comparison at the largest cluster,
* ``ablations``— the A1-A4 design-choice studies,
* ``priority`` — the strict-priority arbitration extension study,
* ``related``  — §5's dynamic-vs-static token-tree comparison,
* ``all``      — everything above, in order,
* ``report``   — render an observability trace written by ``--trace-out``,
* ``chaos``    — run a fault-injection scenario and print its verdict
  (see ``python -m repro chaos --help`` and docs/FAULTS.md),
* ``monitor``  — poll a live cluster's monitor endpoint and render a
  health table with audit verdicts (see docs/MONITORING.md),
* ``replay``   — time-travel debugger for flight-recorder dumps
  (``chaos --flight-dir``); reconstruct state at any seq, diff, grep,
  bisect for the first bad event (see docs/DEBUGGING.md).

``--quick`` switches the sweeps to CI scale (a few seconds total);
``--nodes N`` overrides the node counts with a single cluster size.
``--trace-out run.jsonl`` attaches the observability layer to the
figure/headline experiments and dumps spans + time series as JSONL;
``python -m repro report run.jsonl`` renders that file as text tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from .experiments import ablations, headline, priority, related_work, tables
from .experiments.common import (
    PAPER_NODE_COUNTS,
    QUICK_NODE_COUNTS,
    RunResult,
    write_run_traces,
)
from .experiments.fig5_message_overhead import run_fig5
from .experiments.fig6_latency import run_fig6
from .experiments.fig7_breakdown import run_fig7
from .obs.export import load_runs_from_path
from .obs.report import render_report, report_payload
from .workload.spec import WorkloadSpec

EXPERIMENTS = (
    "tables", "fig5", "fig6", "fig7", "headline", "ablations",
    "priority", "related",
)

#: Experiments that can carry the observability layer (``--trace-out``).
OBSERVABLE = ("fig5", "fig6", "fig7", "headline")


def _chaos_main(argv: Sequence[str]) -> int:
    """``python -m repro chaos``: one fault scenario, one verdict."""

    from .faults.chaos import (
        CHAOS_OBS_MAX_BUCKETS,
        CHAOS_OBS_MAX_SPANS,
        run_chaos,
    )
    from .faults.plan import NAMED_PLANS
    from .obs.collect import RunObserver
    from .obs.export import write_run

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run a scripted workload under a fault plan and "
        "report Rule-1 safety plus eventual-grant liveness.",
    )
    parser.add_argument(
        "--plan", default="smoke", choices=sorted(NAMED_PLANS),
        help="canned fault plan (default: smoke)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="run seed: workload, latency and fault streams all derive "
        "from it, so failures replay bit-for-bit",
    )
    parser.add_argument(
        "--nodes", type=int, default=5, help="cluster size (default: 5)",
    )
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="issue-window length in simulated seconds (default: 30)",
    )
    parser.add_argument(
        "--locks", type=int, default=3,
        help="distinct locks in the workload (default: 3)",
    )
    parser.add_argument(
        "--grace", type=float, default=15.0,
        help="drain window after the issue window (default: 15)",
    )
    parser.add_argument(
        "--durable", action="store_true",
        help="journal every node's protocol state through repro.persist "
        "(file-backed WAL + snapshots) so restarted nodes replay their "
        "journal instead of rejoining blank; blank-rejoin findings "
        "become hard failures",
    )
    parser.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="with --durable: root the WAL/snapshot files at DIR and "
        "keep them after the run (default: a temp dir, always removed)",
    )
    parser.add_argument(
        "--reclaim", action="store_true",
        help="with --durable: surviving application sessions re-assert "
        "their journaled holds under fresh leases after a restart "
        "instead of disowning them (see repro.services.sessions)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full verdict as JSON instead of a summary",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write an observability JSONL trace of the run",
    )
    parser.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="record every node's inputs into a flight-recorder ring "
        "buffer; on a failing verdict (or audit findings) dump all ring "
        "buffers into DIR for `python -m repro replay`",
    )
    args = parser.parse_args(list(argv))
    if args.reclaim and not args.durable:
        parser.error("--reclaim requires --durable (holds are reclaimed "
                     "from the journal)")
    obs = (
        RunObserver(
            max_buckets=CHAOS_OBS_MAX_BUCKETS,
            max_spans=CHAOS_OBS_MAX_SPANS,
        )
        if args.trace_out is not None
        else None
    )
    persistence = None
    tmpdir = None
    if args.durable:
        import shutil
        import tempfile

        from .persist import FilePersistence

        wal_dir = args.wal_dir
        if wal_dir is None:
            tmpdir = tempfile.mkdtemp(prefix="repro-chaos-wal-")
            wal_dir = tmpdir
        persistence = FilePersistence(wal_dir)
    try:
        verdict = run_chaos(
            plan=args.plan,
            seed=args.seed,
            nodes=args.nodes,
            duration=args.duration,
            locks=args.locks,
            grace=args.grace,
            obs=obs,
            durable=args.durable,
            persistence=persistence,
            reclaim=args.reclaim,
            flight_dir=args.flight_dir,
        )
    except KeyboardInterrupt:
        return 130
    finally:
        # A temp WAL root never outlives the run — not on success, not
        # on a failing verdict, not on ^C.  Nested so a close() that
        # raises (e.g. a full disk flushing the final snapshot) cannot
        # skip the rmtree; an explicit --wal-dir is user-owned and kept.
        try:
            if persistence is not None:
                persistence.close()
        finally:
            if tmpdir is not None:
                shutil.rmtree(tmpdir, ignore_errors=True)
    if args.trace_out is not None and obs is not None:
        meta = {
            "label": f"chaos:{args.plan}",
            "plan": args.plan,
            "nodes": args.nodes,
            "seed": args.seed,
            "sim_time": verdict.data["sim_time"],
        }
        with open(args.trace_out, "w", encoding="utf-8") as stream:
            lines = write_run(stream, obs, meta)
        print(f"wrote {lines} trace lines to {args.trace_out}",
              file=sys.stderr)
    if args.json:
        print(verdict.to_json())
    else:
        data = verdict.data
        inv = data["invariants"]
        req = data["requests"]
        rec = data["recovery"]
        status = "OK" if verdict.ok else "FAIL"
        print(
            f"chaos {args.plan} seed={args.seed} nodes={args.nodes}: {status}"
        )
        print(
            f"  rule1 violations: {inv['rule1_violations']}"
            + (f" ({inv['violation']})" if inv["violation"] else "")
        )
        print(
            f"  requests: {req['granted']}/{req['issued']} granted, "
            f"{req['outstanding']} outstanding, "
            f"{req['abandoned_by_crash']} abandoned by crash, "
            f"{req['abandoned_by_expiry']} abandoned by lease expiry"
        )
        print(
            f"  recovery: {rec['suspect_events']} suspects, "
            f"{len(rec['regenerations'])} regenerations, "
            f"{rec['app_retransmits']} request retransmits"
        )
        leases = data.get("leases")
        if leases is not None:
            fenced = ",".join(str(n) for n in leases["fenced_nodes"])
            print(
                f"  leases: {leases['renewals_sent']} renewals, "
                f"{leases['revoked']} revoked, "
                f"fenced=[{fenced}], "
                f"{leases['holds_reclaimed']} holds reclaimed"
            )
        durability = data.get("durability")
        if durability is not None:
            wal = durability["wal"]
            restored = sum(
                entry["rejoin"]["locks_restored"]
                for entry in durability["restarts"]
            )
            print(
                f"  durability: {durability['backend']} backend, "
                f"{wal['appends']} WAL appends, "
                f"{wal['snapshots']} snapshots, "
                f"{len(durability['restarts'])} durable restarts, "
                f"{restored} locks restored"
            )
        audit = data["cluster_audit"]
        gaps = (
            f", known gaps: {', '.join(audit['known_gaps'])}"
            if audit["known_gaps"] else ""
        )
        print(
            f"  cluster audit: "
            f"{'healthy' if audit['healthy'] else 'UNHEALTHY'} "
            f"({len(audit['findings'])} findings, "
            f"{len(audit['expected_findings'])} expected{gaps})"
        )
        for finding in audit["findings"]:
            print(
                f"    [{finding['severity']}] {finding['rule']}: "
                f"{finding['detail']}"
            )
        flight = data.get("flight")
        if flight is not None and "dump" in flight:
            print(
                f"  flight recorder: dumped to {flight['dump']} "
                f"(python -m repro replay {flight['dump']})"
            )
    return 0 if verdict.ok else 1


def _replay_main(argv: Sequence[str]) -> int:
    """``python -m repro replay``: time-travel through a flightrec dump."""

    import json as _json

    from .obs.flightrec import (
        NodeReplayer,
        bisect_timeline,
        build_timeline,
        load_dump,
        run_self_test,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro replay",
        description="Inspect a flight-recorder dump: reconstruct any "
        "node's state at any recorded seq, diff two points in history, "
        "grep events, or bisect for the first event at which an audit "
        "rule fires (see docs/DEBUGGING.md).",
    )
    parser.add_argument(
        "dump", nargs="?", default=None,
        help="flight-recorder dump file (written by chaos --flight-dir "
        "or repro.obs.flightrec.write_dump)",
    )
    parser.add_argument(
        "--node", type=int, default=None,
        help="node to replay (required by --at/--step/--diff)",
    )
    parser.add_argument(
        "--at", type=int, default=None, metavar="SEQ",
        help="print the node's reconstructed state after seq SEQ",
    )
    parser.add_argument(
        "--step", default=None, metavar="A:B",
        help="print every event of the node in seq range A:B (inclusive)",
    )
    parser.add_argument(
        "--diff", nargs=2, type=int, default=None, metavar=("A", "B"),
        help="print the node's state delta between seqs A and B",
    )
    parser.add_argument(
        "--grep", action="append", default=[], metavar="KEY=VALUE",
        help="filter events (keys: kind, lock, op, type, seq); "
        "repeatable, criteria are ANDed",
    )
    parser.add_argument(
        "--bisect", default=None, metavar="RULE",
        help="binary-search the merged timeline for the first event "
        "after which audit RULE fires (e.g. token-split)",
    )
    parser.add_argument(
        "--lock", default=None,
        help="with --bisect: only count findings on this lock",
    )
    parser.add_argument(
        "--quiescent", action="store_true",
        help="with --bisect: audit at quiescent severity (transient "
        "disagreements count as violations)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="record a short seeded run, verify replay determinism, "
        "and bisect a synthetic injected violation (CI smoke)",
    )
    args = parser.parse_args(list(argv))
    if args.self_test:
        return run_self_test()
    if args.dump is None:
        parser.error("a dump file is required (or --self-test)")
    try:
        dump = load_dump(args.dump)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    criteria = {}
    for item in args.grep:
        key, sep, value = item.partition("=")
        if not sep:
            parser.error(f"--grep wants KEY=VALUE, got {item!r}")
        criteria[key] = value

    needs_node = (
        args.at is not None or args.step is not None or args.diff is not None
    )
    if needs_node and args.node is None:
        parser.error("--at/--step/--diff need --node")
    if args.node is not None and args.node not in dump.events:
        print(f"error: node {args.node} is not in the dump "
              f"(nodes: {dump.nodes()})", file=sys.stderr)
        return 2

    if args.bisect is not None:
        verdict = bisect_timeline(
            dump, args.bisect, lock=args.lock, quiescent=args.quiescent
        )
        print(_json.dumps(verdict, indent=2, sort_keys=True, default=str))
        return 0 if verdict.get("fires") else 1

    if args.diff is not None:
        replayer = NodeReplayer.from_dump(dump, args.node)
        print(_json.dumps(
            replayer.diff(args.diff[0], args.diff[1]),
            indent=2, sort_keys=True,
        ))
        return 0

    if args.at is not None:
        replayer = NodeReplayer.from_dump(dump, args.node)
        print(_json.dumps(
            replayer.state_at(args.at), indent=2, sort_keys=True
        ))
        return 0

    if args.step is not None:
        lo_s, sep, hi_s = args.step.partition(":")
        try:
            lo = int(lo_s) if lo_s else 0
            hi = int(hi_s) if sep and hi_s else (1 << 62)
        except ValueError:
            parser.error(f"--step wants A:B seq range, got {args.step!r}")
        replayer = NodeReplayer.from_dump(dump, args.node)
        shown = 0
        for event in replayer.events:
            seq = int(event.get("seq", 0))
            if lo <= seq <= hi and _event_matches_cli(event, criteria):
                print(_json.dumps(event, sort_keys=True))
                shown += 1
        print(f"{shown} event(s)", file=sys.stderr)
        return 0

    if criteria:
        nodes = [args.node] if args.node is not None else dump.nodes()
        shown = 0
        for node_id in nodes:
            replayer = NodeReplayer.from_dump(dump, node_id)
            for event in replayer.grep(criteria):
                print(_json.dumps(
                    dict(event, node=node_id), sort_keys=True
                ))
                shown += 1
        print(f"{shown} event(s)", file=sys.stderr)
        return 0

    # Default: summary + full determinism verification.
    meta = ", ".join(f"{k}={v}" for k, v in sorted(dump.meta.items()))
    print(f"flight dump: protocol={dump.protocol} "
          f"nodes={dump.nodes()}" + (f" ({meta})" if meta else ""))
    if dump.corrupt_skipped or dump.torn_bytes:
        print(f"  damage: {dump.corrupt_skipped} corrupt record(s) "
              f"skipped, {dump.torn_bytes} torn byte(s)")
    timeline = build_timeline(dump)
    print(f"  {len(timeline)} events on the merged timeline")
    findings = []
    for node_id in dump.nodes():
        replayer = NodeReplayer.from_dump(dump, node_id)
        node_findings = replayer.verify()
        findings.extend(node_findings)
        ckpts = sum(1 for e in replayer.events if e.get("kind") == "ckpt")
        dropped = dump.node_meta.get(node_id, {}).get("dropped", 0)
        status = ("ok" if not node_findings
                  else f"{len(node_findings)} finding(s)")
        print(f"  node {node_id}: {len(replayer.events)} events, "
              f"{ckpts} checkpoints, {dropped} dropped — replay {status}")
    if findings:
        print(f"{len(findings)} nondeterminism finding(s):")
        for finding in findings:
            print(f"  node {finding['node']} seq {finding['seq']}: "
                  f"{finding['kind']} — {finding['detail']}")
        return 1
    print("replay clean: every checkpoint reproduced bit-for-bit")
    return 0


def _event_matches_cli(event, criteria) -> bool:
    from .obs.flightrec import _event_matches

    return not criteria or _event_matches(event, criteria)


def _monitor_main(argv: Sequence[str]) -> int:
    """``python -m repro monitor``: live cluster health, human-rendered."""

    import json as _json
    import time as _time
    import urllib.error
    import urllib.request

    from .obs.live import AuditReport, ClusterView
    from .obs.monitor import render_health_table

    parser = argparse.ArgumentParser(
        prog="python -m repro monitor",
        description="Poll a live cluster's monitor endpoint and render a "
        "refreshing health table with online invariant audit verdicts.",
    )
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a running MonitorServer "
        "(e.g. http://127.0.0.1:9178)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls (default: 2)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="poll once, print, and exit 0 iff the audit is healthy",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="boot a small threaded cluster with a monitor endpoint, run "
        "a workload, poll it over real HTTP once, and exit 0 iff the "
        "audit is healthy (the CI smoke path)",
    )
    parser.add_argument(
        "--nodes", type=int, default=3,
        help="cluster size for --self-test (default: 3)",
    )
    args = parser.parse_args(list(argv))
    if args.self_test:
        return _monitor_self_test(args.nodes)
    if args.url is None:
        parser.error("need --url (or --self-test)")

    base = args.url.rstrip("/")
    while True:
        try:
            with urllib.request.urlopen(f"{base}/cluster", timeout=10) as resp:
                payload = _json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"error: cannot poll {base}/cluster: {exc}", file=sys.stderr)
            return 2
        flight = None
        try:
            with urllib.request.urlopen(
                f"{base}/flightrec", timeout=10
            ) as resp:
                flight = _json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError):
            flight = None  # Recording not enabled on that cluster.
        view = ClusterView.from_payload(payload["view"])
        report = AuditReport.from_payload(payload["audit"])
        if not args.once and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(render_health_table(view, report, flight=flight))
        if args.once:
            return 0 if report.ok else 1
        print()
        _time.sleep(args.interval)


def _monitor_self_test(nodes: int) -> int:
    """Boot cluster + endpoint, drive a workload, poll over HTTP."""

    import json as _json
    import threading
    import urllib.request

    from .core.modes import LockMode
    from .obs.collect import RunObserver
    from .obs.live import AuditReport, ClusterView, LiveMonitor
    from .obs.monitor import MonitorServer, render_health_table
    from .runtime.cluster import ThreadedHierarchicalCluster

    observer = RunObserver()
    with ThreadedHierarchicalCluster(max(2, nodes)) as cluster:
        for lockspace in cluster.lockspaces.values():
            lockspace.obs = observer
        cluster.transport.obs = observer
        cluster.transport.tracer = observer.tracer
        monitor = LiveMonitor(cluster.cluster_view, observer=observer)
        with MonitorServer(monitor, observer=observer) as server:
            def worker(node: int) -> None:
                client = cluster.client(node)
                for step in range(4):
                    lock_id = f"lock-{(node + step) % 2}"
                    mode = LockMode.W if (node + step) % 3 == 0 else LockMode.R
                    client.acquire(lock_id, mode, timeout=30.0)
                    client.release(lock_id, mode)

            threads = [
                threading.Thread(target=worker, args=(n,))
                for n in range(cluster.num_nodes)
            ]
            for thread in threads:
                thread.start()
            # One mid-load scrape: must parse, not necessarily be healthy.
            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=10
            ) as resp:
                resp.read()
            for thread in threads:
                thread.join()
            cluster.transport.drain()
            with urllib.request.urlopen(
                f"{server.url}/cluster", timeout=10
            ) as resp:
                payload = _json.loads(resp.read().decode("utf-8"))
            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=10
            ) as resp:
                metrics = resp.read().decode("utf-8")
            healthz_status = urllib.request.urlopen(
                f"{server.url}/healthz", timeout=10
            ).status
    view = ClusterView.from_payload(payload["view"])
    report = AuditReport.from_payload(payload["audit"])
    print(render_health_table(view, report))
    ok = (
        report.ok
        and healthz_status == 200
        and "repro_audit_ok 1" in metrics
        and "repro_messages_total" in metrics
    )
    print(f"self-test: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _membership_main(argv: Sequence[str]) -> int:
    """``python -m repro membership``: dynamic-membership smoke tests."""

    parser = argparse.ArgumentParser(
        prog="python -m repro membership",
        description="Exercise dynamic membership (online join, graceful "
        "drain, forced decommission) across all three protocols.",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the seeded membership smoke: god-view splices on the "
        "plain sim clusters for all three protocols, then churn plans "
        "on the resilient cluster; exit 0 iff every check passes "
        "(the CI smoke path)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for the resilient runs",
    )
    args = parser.parse_args(list(argv))
    if not args.self_test:
        parser.error("need --self-test")
    return _membership_self_test(args.seed)


def _membership_self_test(seed: int) -> int:
    """Splice joins/removals on every protocol, then churn under faults."""

    import random

    from .core.lockspace import hashed_token_home
    from .core.modes import LockMode
    from .faults.chaos import run_chaos
    from .sim.cluster import (
        SimHierarchicalCluster,
        SimNaimiCluster,
        SimRaymondCluster,
    )
    from .sim.engine import Process, Timeout

    locks = ["db", "db.t1", "db.t2"]
    failures: list = []

    def drive_plain(cluster, protocol: str, rng) -> None:
        sim = cluster.sim

        def workload(node: int, ops: int):
            client = cluster.clients[node]
            for _ in range(ops):
                lock = rng.choice(locks)
                if protocol == "hierarchical":
                    mode = rng.choice(
                        [LockMode.R, LockMode.W, LockMode.IR, LockMode.IW]
                    )
                    yield client.acquire(lock, mode)
                else:
                    yield client.acquire(lock)
                yield Timeout(sim, rng.uniform(0.01, 0.1))
                if protocol == "hierarchical":
                    client.release(lock, mode)
                else:
                    client.release(lock)
                yield Timeout(sim, rng.uniform(0.01, 0.05))

        def phase(ops: int) -> None:
            procs = [
                Process(sim, workload(node, ops))
                for node in list(cluster.members)
            ]
            sim.run()
            for proc in procs:
                if proc.error is not None:
                    raise proc.error

        phase(4)
        cluster.add_node()          # Online join mid-sequence.
        phase(3)
        cluster.remove_node(1)      # Graceful removal of a member …
        phase(3)
        cluster.assert_quiescent_invariants()
        cluster.remove_node(0)      # … and of the original token home.
        phase(3)
        cluster.assert_quiescent_invariants()

    plain = (
        (
            "hierarchical",
            lambda: SimHierarchicalCluster(
                4, seed=seed + 1, token_home=hashed_token_home(4)
            ),
        ),
        ("naimi", lambda: SimNaimiCluster(4, seed=seed + 2)),
        ("raymond", lambda: SimRaymondCluster(5, seed=seed + 3)),
    )
    for protocol, build in plain:
        try:
            drive_plain(build(), protocol, random.Random(seed * 7 + 11))
            print(f"membership[{protocol}]: splice join/remove OK")
        except Exception as exc:  # noqa: BLE001 - smoke verdict, not flow
            failures.append(f"{protocol}: {type(exc).__name__}: {exc}")
            print(f"membership[{protocol}]: FAIL — {exc}")

    for plan in ("graceful-drain", "kill-and-replace"):
        verdict = run_chaos(plan, seed=seed, nodes=5, duration=12.0)
        info = verdict.data.get("membership", {})
        agreed = bool(info.get("epoch_agreement")) and bool(
            info.get("membership_agreement")
        )
        status = "OK" if verdict.ok and agreed else "FAIL"
        print(
            f"membership[{plan}]: {status} — "
            f"requests={verdict.data['requests']} "
            f"epochs={info.get('view_epochs')}"
        )
        if not (verdict.ok and agreed):
            failures.append(f"{plan}: verdict not ok")

    print(f"self-test: {'PASS' if not failures else 'FAIL'}")
    for failure in failures:
        print(f"  {failure}")
    return 0 if not failures else 1


def _parse(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce Desai & Mueller (ICDCS 2003).",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all", "report"),
        help="which paper artifact to regenerate, or 'report' to render "
        "an observability trace",
    )
    parser.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="JSONL trace file to render (report subcommand only)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale sweeps instead of 2-120 nodes",
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="run at one specific cluster size",
    )
    parser.add_argument(
        "--ops", type=int, default=None,
        help="operations per node (default: 30, or 15 with --quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=2003, help="workload seed",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write an observability JSONL trace of the runs "
        f"(experiments: {', '.join(OBSERVABLE)})",
    )
    parser.add_argument(
        "--waterfall", type=int, default=None, metavar="N",
        help="report subcommand: per-request hop waterfalls to render, "
        "slowest grants first (default: 3; 0 disables)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="report subcommand: emit machine-readable JSON instead of "
        "text tables",
    )
    args = parser.parse_args(argv)
    if args.experiment == "report" and args.trace is None:
        parser.error("report needs a trace file: python -m repro report run.jsonl")
    if args.experiment != "report" and args.trace is not None:
        parser.error(f"unexpected argument {args.trace!r}")
    return args


def _is_flight_dump(path: str) -> bool:
    from .obs.flightrec import looks_like_flight_dump

    return looks_like_flight_dump(path)


def main(argv: Sequence[str] = ()) -> int:
    """Entry point; returns a process exit status."""

    raw = list(argv) or sys.argv[1:]
    if raw and raw[0] == "chaos":
        # The chaos harness has its own flag set (fault plan, drain
        # window, verdict format); route before the experiment parser.
        return _chaos_main(raw[1:])
    if raw and raw[0] == "monitor":
        # Live-monitor CLI: polls a cluster endpoint (or self-tests one).
        return _monitor_main(raw[1:])
    if raw and raw[0] == "replay":
        # Flight-recorder debugger: replay/diff/bisect a recorded dump.
        return _replay_main(raw[1:])
    if raw and raw[0] == "membership":
        # Dynamic-membership smoke: splices + churn plans, all protocols.
        return _membership_main(raw[1:])
    args = _parse(raw)
    if args.experiment == "report":
        try:
            runs = load_runs_from_path(args.trace)
        except OSError as exc:
            print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:  # bad JSON, binary data, truncated line
            if _is_flight_dump(args.trace):
                print(
                    f"error: {args.trace} looks like a flightrec dump — "
                    "use `python -m repro replay`", file=sys.stderr,
                )
                return 2
            print(f"error: {args.trace} is not a trace file: {exc}",
                  file=sys.stderr)
            return 2
        if not runs:
            if _is_flight_dump(args.trace):
                print(
                    f"error: {args.trace} looks like a flightrec dump — "
                    "use `python -m repro replay`", file=sys.stderr,
                )
                return 2
            print(f"error: {args.trace} contains no run sections "
                  "(empty trace file?)", file=sys.stderr)
            return 2
        if args.json:
            import json as _json

            print(_json.dumps(
                [report_payload(run) for run in runs], indent=2
            ))
            return 0
        waterfalls = args.waterfall if args.waterfall is not None else 3
        print(render_report(runs, waterfalls=waterfalls))
        return 0
    counts: List[int]
    if args.nodes is not None:
        counts = [args.nodes]
    elif args.quick:
        counts = list(QUICK_NODE_COUNTS)
    else:
        counts = list(PAPER_NODE_COUNTS)
    ops = args.ops if args.ops is not None else (15 if args.quick else 30)
    spec = WorkloadSpec(ops_per_node=ops, seed=args.seed)
    observe = args.trace_out is not None
    observed: List[RunResult] = []
    wanted = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in wanted:
        if name == "tables":
            print(tables.render_all())
        elif name == "fig5":
            result = run_fig5(counts, spec, observe=observe)
            observed.extend(result.all_runs())
            print(result.render())
        elif name == "fig6":
            result = run_fig6(counts, spec, observe=observe)
            observed.extend(result.all_runs())
            print(result.render())
        elif name == "fig7":
            result = run_fig7(counts, spec, observe=observe)
            observed.extend(result.all_runs())
            print(result.render())
        elif name == "headline":
            result = headline.run_headline(max(counts), spec, observe=observe)
            observed.extend(result.all_runs())
            print(result.render())
        elif name == "ablations":
            ablations.main()
        elif name == "priority":
            print(priority.run_priority_study().render())
        elif name == "related":
            quick_counts = (2, 4, 8, 16) if args.quick else (2, 4, 8, 16, 32, 64)
            print(related_work.run_related_work(quick_counts).render())
        print()
    if args.trace_out is not None:
        if not observed:
            print(
                f"note: --trace-out only instruments {', '.join(OBSERVABLE)}; "
                "nothing to write",
                file=sys.stderr,
            )
        else:
            lines = write_run_traces(args.trace_out, observed)
            print(
                f"wrote {lines} trace lines for {len(observed)} runs "
                f"to {args.trace_out}",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())

"""Command-line driver: ``python -m repro <experiment> [--quick]``.

Runs any of the paper's experiments from the shell:

* ``tables``   — regenerate and verify Tables 1(a)-2(b),
* ``fig5``     — Figure 5, message overhead vs. nodes,
* ``fig6``     — Figure 6, latency factor vs. nodes,
* ``fig7``     — Figure 7, message-type breakdown,
* ``headline`` — the §6 comparison at the largest cluster,
* ``ablations``— the A1-A4 design-choice studies,
* ``priority`` — the strict-priority arbitration extension study,
* ``related``  — §5's dynamic-vs-static token-tree comparison,
* ``all``      — everything above, in order.

``--quick`` switches the sweeps to CI scale (a few seconds total);
``--nodes N`` overrides the node counts with a single cluster size.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from .experiments import ablations, headline, priority, related_work, tables
from .experiments.common import PAPER_NODE_COUNTS, QUICK_NODE_COUNTS
from .experiments.fig5_message_overhead import run_fig5
from .experiments.fig6_latency import run_fig6
from .experiments.fig7_breakdown import run_fig7
from .workload.spec import WorkloadSpec

EXPERIMENTS = (
    "tables", "fig5", "fig6", "fig7", "headline", "ablations",
    "priority", "related",
)


def _parse(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce Desai & Mueller (ICDCS 2003).",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale sweeps instead of 2-120 nodes",
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="run at one specific cluster size",
    )
    parser.add_argument(
        "--ops", type=int, default=None,
        help="operations per node (default: 30, or 15 with --quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=2003, help="workload seed",
    )
    return parser.parse_args(argv)


def main(argv: Sequence[str] = ()) -> int:
    """Entry point; returns a process exit status."""

    args = _parse(list(argv) or sys.argv[1:])
    counts: List[int]
    if args.nodes is not None:
        counts = [args.nodes]
    elif args.quick:
        counts = list(QUICK_NODE_COUNTS)
    else:
        counts = list(PAPER_NODE_COUNTS)
    ops = args.ops if args.ops is not None else (15 if args.quick else 30)
    spec = WorkloadSpec(ops_per_node=ops, seed=args.seed)
    wanted = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in wanted:
        if name == "tables":
            print(tables.render_all())
        elif name == "fig5":
            print(run_fig5(counts, spec).render())
        elif name == "fig6":
            print(run_fig6(counts, spec).render())
        elif name == "fig7":
            print(run_fig7(counts, spec).render())
        elif name == "headline":
            print(headline.run_headline(max(counts), spec).render())
        elif name == "ablations":
            ablations.main()
        elif name == "priority":
            print(priority.run_priority_study().render())
        elif name == "related":
            quick_counts = (2, 4, 8, 16) if args.quick else (2, 4, 8, 16, 32, 64)
            print(related_work.run_related_work(quick_counts).render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())

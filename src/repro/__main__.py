"""Command-line driver: ``python -m repro <experiment> [--quick]``.

Runs any of the paper's experiments from the shell:

* ``tables``   — regenerate and verify Tables 1(a)-2(b),
* ``fig5``     — Figure 5, message overhead vs. nodes,
* ``fig6``     — Figure 6, latency factor vs. nodes,
* ``fig7``     — Figure 7, message-type breakdown,
* ``headline`` — the §6 comparison at the largest cluster,
* ``ablations``— the A1-A4 design-choice studies,
* ``priority`` — the strict-priority arbitration extension study,
* ``related``  — §5's dynamic-vs-static token-tree comparison,
* ``all``      — everything above, in order,
* ``report``   — render an observability trace written by ``--trace-out``,
* ``chaos``    — run a fault-injection scenario and print its verdict
  (see ``python -m repro chaos --help`` and docs/FAULTS.md),
* ``monitor``  — poll a live cluster's monitor endpoint and render a
  health table with audit verdicts (see docs/MONITORING.md).

``--quick`` switches the sweeps to CI scale (a few seconds total);
``--nodes N`` overrides the node counts with a single cluster size.
``--trace-out run.jsonl`` attaches the observability layer to the
figure/headline experiments and dumps spans + time series as JSONL;
``python -m repro report run.jsonl`` renders that file as text tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from .experiments import ablations, headline, priority, related_work, tables
from .experiments.common import (
    PAPER_NODE_COUNTS,
    QUICK_NODE_COUNTS,
    RunResult,
    write_run_traces,
)
from .experiments.fig5_message_overhead import run_fig5
from .experiments.fig6_latency import run_fig6
from .experiments.fig7_breakdown import run_fig7
from .obs.export import load_runs_from_path
from .obs.report import render_report, report_payload
from .workload.spec import WorkloadSpec

EXPERIMENTS = (
    "tables", "fig5", "fig6", "fig7", "headline", "ablations",
    "priority", "related",
)

#: Experiments that can carry the observability layer (``--trace-out``).
OBSERVABLE = ("fig5", "fig6", "fig7", "headline")


def _chaos_main(argv: Sequence[str]) -> int:
    """``python -m repro chaos``: one fault scenario, one verdict."""

    from .faults.chaos import run_chaos
    from .faults.plan import NAMED_PLANS
    from .obs.collect import RunObserver
    from .obs.export import write_run

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run a scripted workload under a fault plan and "
        "report Rule-1 safety plus eventual-grant liveness.",
    )
    parser.add_argument(
        "--plan", default="smoke", choices=sorted(NAMED_PLANS),
        help="canned fault plan (default: smoke)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="run seed: workload, latency and fault streams all derive "
        "from it, so failures replay bit-for-bit",
    )
    parser.add_argument(
        "--nodes", type=int, default=5, help="cluster size (default: 5)",
    )
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="issue-window length in simulated seconds (default: 30)",
    )
    parser.add_argument(
        "--locks", type=int, default=3,
        help="distinct locks in the workload (default: 3)",
    )
    parser.add_argument(
        "--grace", type=float, default=15.0,
        help="drain window after the issue window (default: 15)",
    )
    parser.add_argument(
        "--durable", action="store_true",
        help="journal every node's protocol state through repro.persist "
        "(file-backed WAL + snapshots) so restarted nodes replay their "
        "journal instead of rejoining blank; blank-rejoin findings "
        "become hard failures",
    )
    parser.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="with --durable: root the WAL/snapshot files at DIR and "
        "keep them after the run (default: a temp dir, always removed)",
    )
    parser.add_argument(
        "--reclaim", action="store_true",
        help="with --durable: surviving application sessions re-assert "
        "their journaled holds under fresh leases after a restart "
        "instead of disowning them (see repro.services.sessions)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full verdict as JSON instead of a summary",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write an observability JSONL trace of the run",
    )
    args = parser.parse_args(list(argv))
    if args.reclaim and not args.durable:
        parser.error("--reclaim requires --durable (holds are reclaimed "
                     "from the journal)")
    obs = RunObserver() if args.trace_out is not None else None
    persistence = None
    tmpdir = None
    if args.durable:
        import shutil
        import tempfile

        from .persist import FilePersistence

        wal_dir = args.wal_dir
        if wal_dir is None:
            tmpdir = tempfile.mkdtemp(prefix="repro-chaos-wal-")
            wal_dir = tmpdir
        persistence = FilePersistence(wal_dir)
    try:
        verdict = run_chaos(
            plan=args.plan,
            seed=args.seed,
            nodes=args.nodes,
            duration=args.duration,
            locks=args.locks,
            grace=args.grace,
            obs=obs,
            durable=args.durable,
            persistence=persistence,
            reclaim=args.reclaim,
        )
    except KeyboardInterrupt:
        return 130
    finally:
        # A temp WAL root never outlives the run — not on success, not
        # on a failing verdict, not on ^C.  Nested so a close() that
        # raises (e.g. a full disk flushing the final snapshot) cannot
        # skip the rmtree; an explicit --wal-dir is user-owned and kept.
        try:
            if persistence is not None:
                persistence.close()
        finally:
            if tmpdir is not None:
                shutil.rmtree(tmpdir, ignore_errors=True)
    if args.trace_out is not None and obs is not None:
        meta = {
            "label": f"chaos:{args.plan}",
            "plan": args.plan,
            "nodes": args.nodes,
            "seed": args.seed,
            "sim_time": verdict.data["sim_time"],
        }
        with open(args.trace_out, "w", encoding="utf-8") as stream:
            lines = write_run(stream, obs, meta)
        print(f"wrote {lines} trace lines to {args.trace_out}",
              file=sys.stderr)
    if args.json:
        print(verdict.to_json())
    else:
        data = verdict.data
        inv = data["invariants"]
        req = data["requests"]
        rec = data["recovery"]
        status = "OK" if verdict.ok else "FAIL"
        print(
            f"chaos {args.plan} seed={args.seed} nodes={args.nodes}: {status}"
        )
        print(
            f"  rule1 violations: {inv['rule1_violations']}"
            + (f" ({inv['violation']})" if inv["violation"] else "")
        )
        print(
            f"  requests: {req['granted']}/{req['issued']} granted, "
            f"{req['outstanding']} outstanding, "
            f"{req['abandoned_by_crash']} abandoned by crash, "
            f"{req['abandoned_by_expiry']} abandoned by lease expiry"
        )
        print(
            f"  recovery: {rec['suspect_events']} suspects, "
            f"{len(rec['regenerations'])} regenerations, "
            f"{rec['app_retransmits']} request retransmits"
        )
        leases = data.get("leases")
        if leases is not None:
            fenced = ",".join(str(n) for n in leases["fenced_nodes"])
            print(
                f"  leases: {leases['renewals_sent']} renewals, "
                f"{leases['revoked']} revoked, "
                f"fenced=[{fenced}], "
                f"{leases['holds_reclaimed']} holds reclaimed"
            )
        durability = data.get("durability")
        if durability is not None:
            wal = durability["wal"]
            restored = sum(
                entry["rejoin"]["locks_restored"]
                for entry in durability["restarts"]
            )
            print(
                f"  durability: {durability['backend']} backend, "
                f"{wal['appends']} WAL appends, "
                f"{wal['snapshots']} snapshots, "
                f"{len(durability['restarts'])} durable restarts, "
                f"{restored} locks restored"
            )
        audit = data["cluster_audit"]
        gaps = (
            f", known gaps: {', '.join(audit['known_gaps'])}"
            if audit["known_gaps"] else ""
        )
        print(
            f"  cluster audit: "
            f"{'healthy' if audit['healthy'] else 'UNHEALTHY'} "
            f"({len(audit['findings'])} findings, "
            f"{len(audit['expected_findings'])} expected{gaps})"
        )
        for finding in audit["findings"]:
            print(
                f"    [{finding['severity']}] {finding['rule']}: "
                f"{finding['detail']}"
            )
    return 0 if verdict.ok else 1


def _monitor_main(argv: Sequence[str]) -> int:
    """``python -m repro monitor``: live cluster health, human-rendered."""

    import json as _json
    import time as _time
    import urllib.error
    import urllib.request

    from .obs.live import AuditReport, ClusterView
    from .obs.monitor import render_health_table

    parser = argparse.ArgumentParser(
        prog="python -m repro monitor",
        description="Poll a live cluster's monitor endpoint and render a "
        "refreshing health table with online invariant audit verdicts.",
    )
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a running MonitorServer "
        "(e.g. http://127.0.0.1:9178)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls (default: 2)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="poll once, print, and exit 0 iff the audit is healthy",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="boot a small threaded cluster with a monitor endpoint, run "
        "a workload, poll it over real HTTP once, and exit 0 iff the "
        "audit is healthy (the CI smoke path)",
    )
    parser.add_argument(
        "--nodes", type=int, default=3,
        help="cluster size for --self-test (default: 3)",
    )
    args = parser.parse_args(list(argv))
    if args.self_test:
        return _monitor_self_test(args.nodes)
    if args.url is None:
        parser.error("need --url (or --self-test)")

    base = args.url.rstrip("/")
    while True:
        try:
            with urllib.request.urlopen(f"{base}/cluster", timeout=10) as resp:
                payload = _json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"error: cannot poll {base}/cluster: {exc}", file=sys.stderr)
            return 2
        view = ClusterView.from_payload(payload["view"])
        report = AuditReport.from_payload(payload["audit"])
        if not args.once and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(render_health_table(view, report))
        if args.once:
            return 0 if report.ok else 1
        print()
        _time.sleep(args.interval)


def _monitor_self_test(nodes: int) -> int:
    """Boot cluster + endpoint, drive a workload, poll over HTTP."""

    import json as _json
    import threading
    import urllib.request

    from .core.modes import LockMode
    from .obs.collect import RunObserver
    from .obs.live import AuditReport, ClusterView, LiveMonitor
    from .obs.monitor import MonitorServer, render_health_table
    from .runtime.cluster import ThreadedHierarchicalCluster

    observer = RunObserver()
    with ThreadedHierarchicalCluster(max(2, nodes)) as cluster:
        for lockspace in cluster.lockspaces.values():
            lockspace.obs = observer
        cluster.transport.obs = observer
        cluster.transport.tracer = observer.tracer
        monitor = LiveMonitor(cluster.cluster_view, observer=observer)
        with MonitorServer(monitor, observer=observer) as server:
            def worker(node: int) -> None:
                client = cluster.client(node)
                for step in range(4):
                    lock_id = f"lock-{(node + step) % 2}"
                    mode = LockMode.W if (node + step) % 3 == 0 else LockMode.R
                    client.acquire(lock_id, mode, timeout=30.0)
                    client.release(lock_id, mode)

            threads = [
                threading.Thread(target=worker, args=(n,))
                for n in range(cluster.num_nodes)
            ]
            for thread in threads:
                thread.start()
            # One mid-load scrape: must parse, not necessarily be healthy.
            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=10
            ) as resp:
                resp.read()
            for thread in threads:
                thread.join()
            cluster.transport.drain()
            with urllib.request.urlopen(
                f"{server.url}/cluster", timeout=10
            ) as resp:
                payload = _json.loads(resp.read().decode("utf-8"))
            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=10
            ) as resp:
                metrics = resp.read().decode("utf-8")
            healthz_status = urllib.request.urlopen(
                f"{server.url}/healthz", timeout=10
            ).status
    view = ClusterView.from_payload(payload["view"])
    report = AuditReport.from_payload(payload["audit"])
    print(render_health_table(view, report))
    ok = (
        report.ok
        and healthz_status == 200
        and "repro_audit_ok 1" in metrics
        and "repro_messages_total" in metrics
    )
    print(f"self-test: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _parse(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce Desai & Mueller (ICDCS 2003).",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all", "report"),
        help="which paper artifact to regenerate, or 'report' to render "
        "an observability trace",
    )
    parser.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="JSONL trace file to render (report subcommand only)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale sweeps instead of 2-120 nodes",
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="run at one specific cluster size",
    )
    parser.add_argument(
        "--ops", type=int, default=None,
        help="operations per node (default: 30, or 15 with --quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=2003, help="workload seed",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write an observability JSONL trace of the runs "
        f"(experiments: {', '.join(OBSERVABLE)})",
    )
    parser.add_argument(
        "--waterfall", type=int, default=None, metavar="N",
        help="report subcommand: per-request hop waterfalls to render, "
        "slowest grants first (default: 3; 0 disables)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="report subcommand: emit machine-readable JSON instead of "
        "text tables",
    )
    args = parser.parse_args(argv)
    if args.experiment == "report" and args.trace is None:
        parser.error("report needs a trace file: python -m repro report run.jsonl")
    if args.experiment != "report" and args.trace is not None:
        parser.error(f"unexpected argument {args.trace!r}")
    return args


def main(argv: Sequence[str] = ()) -> int:
    """Entry point; returns a process exit status."""

    raw = list(argv) or sys.argv[1:]
    if raw and raw[0] == "chaos":
        # The chaos harness has its own flag set (fault plan, drain
        # window, verdict format); route before the experiment parser.
        return _chaos_main(raw[1:])
    if raw and raw[0] == "monitor":
        # Live-monitor CLI: polls a cluster endpoint (or self-tests one).
        return _monitor_main(raw[1:])
    args = _parse(raw)
    if args.experiment == "report":
        try:
            runs = load_runs_from_path(args.trace)
        except OSError as exc:
            print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:  # bad JSON, binary data, truncated line
            print(f"error: {args.trace} is not a trace file: {exc}",
                  file=sys.stderr)
            return 2
        if not runs:
            print(f"error: {args.trace} contains no run sections "
                  "(empty trace file?)", file=sys.stderr)
            return 2
        if args.json:
            import json as _json

            print(_json.dumps(
                [report_payload(run) for run in runs], indent=2
            ))
            return 0
        waterfalls = args.waterfall if args.waterfall is not None else 3
        print(render_report(runs, waterfalls=waterfalls))
        return 0
    counts: List[int]
    if args.nodes is not None:
        counts = [args.nodes]
    elif args.quick:
        counts = list(QUICK_NODE_COUNTS)
    else:
        counts = list(PAPER_NODE_COUNTS)
    ops = args.ops if args.ops is not None else (15 if args.quick else 30)
    spec = WorkloadSpec(ops_per_node=ops, seed=args.seed)
    observe = args.trace_out is not None
    observed: List[RunResult] = []
    wanted = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in wanted:
        if name == "tables":
            print(tables.render_all())
        elif name == "fig5":
            result = run_fig5(counts, spec, observe=observe)
            observed.extend(result.all_runs())
            print(result.render())
        elif name == "fig6":
            result = run_fig6(counts, spec, observe=observe)
            observed.extend(result.all_runs())
            print(result.render())
        elif name == "fig7":
            result = run_fig7(counts, spec, observe=observe)
            observed.extend(result.all_runs())
            print(result.render())
        elif name == "headline":
            result = headline.run_headline(max(counts), spec, observe=observe)
            observed.extend(result.all_runs())
            print(result.render())
        elif name == "ablations":
            ablations.main()
        elif name == "priority":
            print(priority.run_priority_study().render())
        elif name == "related":
            quick_counts = (2, 4, 8, 16) if args.quick else (2, 4, 8, 16, 32, 64)
            print(related_work.run_related_work(quick_counts).render())
        print()
    if args.trace_out is not None:
        if not observed:
            print(
                f"note: --trace-out only instruments {', '.join(OBSERVABLE)}; "
                "nothing to write",
                file=sys.stderr,
            )
        else:
            lines = write_run_traces(args.trace_out, observed)
            print(
                f"wrote {lines} trace lines for {len(observed)} runs "
                f"to {args.trace_out}",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())

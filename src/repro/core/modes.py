"""Lock modes and the rule tables of the hierarchical locking protocol.

This module encodes the mode algebra of Desai & Mueller (ICDCS 2003),
Section 3.1, together with all four rule tables:

* Table 1(a) — mode compatibility (the OMG Concurrency Service conflict
  matrix),
* Table 1(b) — which owned modes allow a *non-token* node to grant a
  request (Rule 3.1),
* Table 2(a) — whether a non-token node with a pending request queues or
  forwards an ungrantable incoming request (Rule 4.1),
* Table 2(b) — which modes the token node freezes when it queues an
  incompatible request (Rule 6 / Section 3.3).

The tables are *derived* from the compatibility matrix and the strength
order rather than hard-coded, mirroring how the paper presents them as
consequences of Rules 1-6.  ``tests/core/test_modes.py`` pins the derived
values against every legible cell and worked example in the paper, so a
regression in the derivation is caught immediately.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Tuple


class LockMode(enum.Enum):
    """The five CORBA concurrency-service lock modes plus the empty mode.

    ``NONE`` (the paper's ``∅``) is the mode of a node that neither holds
    nor owns the lock.  The remaining modes follow the OMG Concurrency
    Service specification: intention read, read, upgrade, intention write
    and write.
    """

    NONE = "NL"
    IR = "IR"
    R = "R"
    U = "U"
    IW = "IW"
    W = "W"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LockMode.{self.name}"

    def __str__(self) -> str:
        return self.value


#: All real (non-empty) modes in table order, as used by the paper's tables.
REAL_MODES: Tuple[LockMode, ...] = (
    LockMode.IR,
    LockMode.R,
    LockMode.U,
    LockMode.IW,
    LockMode.W,
)

#: All modes including the empty mode, in strength order (ties broken by
#: table order for U/IW which share a strength level).
ALL_MODES: Tuple[LockMode, ...] = (LockMode.NONE,) + REAL_MODES


# ---------------------------------------------------------------------------
# Strength order (Eq. 1):   ∅ < IR < R < U = IW < W
# ---------------------------------------------------------------------------

_STRENGTH: Dict[LockMode, int] = {
    LockMode.NONE: 0,
    LockMode.IR: 1,
    LockMode.R: 2,
    LockMode.U: 3,
    LockMode.IW: 3,
    LockMode.W: 4,
}


def strength(mode: LockMode) -> int:
    """Return the numeric strength of *mode* per the paper's Eq. (1).

    A higher strength constrains concurrency more.  ``U`` and ``IW`` share
    a strength level (``U = IW`` in the paper).
    """

    return _STRENGTH[mode]


def stronger_or_equal(left: LockMode, right: LockMode) -> bool:
    """Return ``True`` iff ``left >= right`` in the strength order."""

    return _STRENGTH[left] >= _STRENGTH[right]


def strictly_weaker(left: LockMode, right: LockMode) -> bool:
    """Return ``True`` iff ``left < right`` in the strength order."""

    return _STRENGTH[left] < _STRENGTH[right]


def max_mode(modes: Iterable[LockMode]) -> LockMode:
    """Return the strongest mode in *modes* (``NONE`` if empty).

    Where ``U`` and ``IW`` tie, the one encountered first wins; the
    protocol never produces a tree containing both simultaneously because
    they conflict (Table 1a), so the tie-break is unobservable in practice.
    """

    best = LockMode.NONE
    for mode in modes:
        if _STRENGTH[mode] > _STRENGTH[best]:
            best = mode
    return best


# ---------------------------------------------------------------------------
# Table 1(a) — compatibility.
# ---------------------------------------------------------------------------

# The OMG Concurrency Service conflict matrix.  ``_CONFLICTS[m]`` is the set
# of modes that may NOT be held concurrently with ``m``.  NONE conflicts
# with nothing.
_CONFLICTS: Dict[LockMode, FrozenSet[LockMode]] = {
    LockMode.NONE: frozenset(),
    LockMode.IR: frozenset({LockMode.W}),
    LockMode.R: frozenset({LockMode.IW, LockMode.W}),
    LockMode.U: frozenset({LockMode.U, LockMode.IW, LockMode.W}),
    LockMode.IW: frozenset({LockMode.R, LockMode.U, LockMode.W}),
    LockMode.W: frozenset(
        {LockMode.IR, LockMode.R, LockMode.U, LockMode.IW, LockMode.W}
    ),
}


def compatible(left: LockMode, right: LockMode) -> bool:
    """Rule 1: modes are compatible iff they do not conflict (Table 1a)."""

    return right not in _CONFLICTS[left]


def conflicts(left: LockMode, right: LockMode) -> bool:
    """Return ``True`` iff the two modes conflict per Table 1(a)."""

    return right in _CONFLICTS[left]


def compatible_modes(mode: LockMode) -> FrozenSet[LockMode]:
    """Return the set of real modes compatible with *mode*."""

    return frozenset(m for m in REAL_MODES if compatible(mode, m))


def conflicting_modes(mode: LockMode) -> FrozenSet[LockMode]:
    """Return the set of real modes conflicting with *mode*."""

    return _CONFLICTS[mode] & frozenset(REAL_MODES)


# ---------------------------------------------------------------------------
# Table 1(b) — grants by non-token nodes (Rule 3.1).
# ---------------------------------------------------------------------------


def child_can_grant(owned: LockMode, requested: LockMode) -> bool:
    """Rule 3.1: a non-token node owning *owned* may grant *requested*.

    Requires compatibility *and* that the owned mode is at least as strong
    as the requested one.  The strength condition is what makes local
    knowledge sufficient for correctness: the granter's owned mode is an
    upper bound on every mode held in its subtree, and anything compatible
    with a stronger mode is compatible with all weaker ones below it.
    """

    if owned is LockMode.NONE or requested is LockMode.NONE:
        return False
    return compatible(owned, requested) and stronger_or_equal(owned, requested)


def token_can_grant(owned: LockMode, requested: LockMode) -> bool:
    """Rule 3.2: the token node grants iff the modes are compatible."""

    if requested is LockMode.NONE:
        return False
    return compatible(owned, requested)


def token_transfer_required(owned: LockMode, requested: LockMode) -> bool:
    """Rule 3.2 (operational): grant by token transfer vs. by copy.

    When the token node grants a request *stronger* than its owned mode the
    token itself moves to the requester; otherwise the requester receives a
    granted copy and becomes a child.
    """

    return token_can_grant(owned, requested) and strictly_weaker(owned, requested)


def always_transfers_token(requested: LockMode) -> bool:
    """Return True iff any grant of *requested* necessarily moves the token.

    ``U`` and ``W`` conflict with every mode of equal or greater strength,
    so whenever they are grantable at the token the owned mode is strictly
    weaker and Rule 3.2 transfers the token.  This property drives the
    all-queue rows of Table 2(a).
    """

    if requested in (LockMode.U, LockMode.W):
        return True
    return False


# ---------------------------------------------------------------------------
# Table 2(a) — queue vs forward at a non-token node with a pending request
# (Rule 4.1).
# ---------------------------------------------------------------------------


def should_queue(pending: LockMode, requested: LockMode) -> bool:
    """Rule 4.1 / Table 2(a): queue locally (True) or forward (False).

    A non-token node that cannot grant an incoming request, but has a
    request of its own in flight for mode *pending*, queues the incoming
    request exactly when it will be able to serve it locally once its own
    request is granted:

    * if the pending mode necessarily arrives via a token transfer
      (``U``/``W``), this node is about to become the token node, and token
      nodes queue everything (Rule 4.2) — so queue;
    * otherwise queue iff the granted pending mode could grant *requested*
      as a non-token node (Rule 3.1).

    Queuing in any other situation could strand the request, so it is
    forwarded toward the token instead.
    """

    if pending is LockMode.NONE:
        return False
    if always_transfers_token(pending):
        return True
    return child_can_grant(pending, requested)


# ---------------------------------------------------------------------------
# Table 2(b) — frozen modes at the token node (Section 3.3).
# ---------------------------------------------------------------------------


def freeze_set(owned: LockMode, requested: LockMode) -> FrozenSet[LockMode]:
    """Table 2(b): modes frozen when the token queues an incompatible request.

    Freezing must stop every *new* grant that would keep delaying the
    queued request, i.e. every mode that conflicts with the request; but
    only modes compatible with the token's owned mode can currently be
    granted anywhere in the tree, so the frozen set is the intersection::

        {M : conflicts(M, requested)} ∩ {M : compatible(M, owned)}

    Example from the paper: token owns ``IW`` and queues an ``R`` request →
    the frozen set is ``{IW}``.
    """

    return frozenset(
        m
        for m in REAL_MODES
        if conflicts(m, requested) and compatible(m, owned)
    )


def intention_mode(mode: LockMode) -> LockMode:
    """Return the intent mode to take on an ancestor for a leaf access.

    Multi-granularity locking (Gray et al.): reading below requires ``IR``
    on the ancestor, writing (or intending to write, as ``U`` does) below
    requires ``IW``.
    """

    if mode in (LockMode.IR, LockMode.R):
        return LockMode.IR
    if mode in (LockMode.U, LockMode.IW, LockMode.W):
        return LockMode.IW
    return LockMode.NONE


# ---------------------------------------------------------------------------
# Table rendering — used by the experiments harness and the table benchmarks
# to regenerate the paper's Tables 1 and 2 verbatim.
# ---------------------------------------------------------------------------


def _render_grid(
    title: str,
    cell: "callable",
    rows: Tuple[LockMode, ...] = ALL_MODES,
    cols: Tuple[LockMode, ...] = REAL_MODES,
) -> str:
    """Render a mode × mode table as fixed-width text."""

    width = 10
    lines: List[str] = [title]
    header = "M1\\M2".ljust(width) + "".join(str(c).ljust(width) for c in cols)
    lines.append(header)
    for row in rows:
        label = "(none)" if row is LockMode.NONE else str(row)
        cells = "".join(str(cell(row, col)).ljust(width) for col in cols)
        lines.append(label.ljust(width) + cells)
    return "\n".join(lines)


def render_table_1a() -> str:
    """Render Table 1(a): ``X`` marks incompatible mode pairs."""

    return _render_grid(
        "Table 1(a) - Incompatible modes (X = conflict)",
        lambda m1, m2: "X" if conflicts(m1, m2) else ".",
    )


def render_table_1b() -> str:
    """Render Table 1(b): ``X`` marks owned modes that cannot child-grant."""

    return _render_grid(
        "Table 1(b) - No child grant (X = cannot grant)",
        lambda m1, m2: "." if child_can_grant(m1, m2) else "X",
    )


def render_table_2a() -> str:
    """Render Table 2(a): ``Q`` = queue locally, ``F`` = forward."""

    return _render_grid(
        "Table 2(a) - Queue (Q) or forward (F) at non-token node",
        lambda m1, m2: "Q" if should_queue(m1, m2) else "F",
    )


def render_table_2b() -> str:
    """Render Table 2(b): frozen modes per (owned, requested) pair."""

    def cell(m1: LockMode, m2: LockMode) -> str:
        if compatible(m1, m2):
            return "-"
        frozen = freeze_set(m1, m2)
        if not frozen:
            return "(none)"
        ordered = [m for m in REAL_MODES if m in frozen]
        return ",".join(str(m) for m in ordered)

    width = 14
    lines = ["Table 2(b) - Frozen modes at token (owned x requested)"]
    header = "M1\\M2".ljust(width) + "".join(str(c).ljust(width) for c in REAL_MODES)
    lines.append(header)
    for row in REAL_MODES:
        cells = "".join(cell(row, col).ljust(width) for col in REAL_MODES)
        lines.append(str(row).ljust(width) + cells)
    return "\n".join(lines)

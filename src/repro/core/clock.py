"""Lamport logical clock used to FIFO-order lock requests.

The paper preserves FIFO service order across local queues and queue
merges on token transfer "as discussed in [11]", i.e. with logical
timestamps.  One clock is shared by all lock automata of a node (see
:class:`repro.core.lockspace.LockSpace`).
"""

from __future__ import annotations


class LamportClock:
    """A classic Lamport clock: ``tick`` to stamp, ``observe`` to merge."""

    __slots__ = ("_time",)

    def __init__(self, start: int = 0) -> None:
        self._time = start

    @property
    def time(self) -> int:
        """Current clock value (the last timestamp issued or observed)."""

        return self._time

    def tick(self) -> int:
        """Advance the clock for a local event and return the new stamp."""

        self._time += 1
        return self._time

    def observe(self, remote_time: int) -> int:
        """Merge a remote timestamp and advance past it (receive rule)."""

        self._time = max(self._time, remote_time) + 1
        return self._time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LamportClock(time={self._time})"

"""The hierarchical locking protocol automaton (Rules 1-7, Fig. 4).

One :class:`HierarchicalLockAutomaton` instance embodies the per-node,
per-lock state of the Desai/Mueller protocol: the parent pointer of the
copyset tree, the token flag, the held/owned/pending modes, the copyset
(children and their owned modes), the local FIFO queue and the frozen-mode
set.

The automaton is **transport-agnostic**: every public method returns the
list of :class:`~repro.core.messages.Envelope` objects to transmit, and
grant notifications are delivered through a caller-supplied listener
callback.  The discrete-event simulator, the threaded runtime, the unit
tests and the model explorer all drive this same class.

Deviations from the paper's (OCR-damaged) pseudocode, argued in
DESIGN.md §3 and §6:

* **Detach on re-parenting.**  When a node acquires the token, or is
  granted a copy by a node other than its current parent, it sends a
  ``Release(NONE)`` to its former parent.  Without this the former parent
  would retain a phantom copyset entry forever, inflating its owned mode
  and eventually deadlocking strong requests.  (The paper's note (b)
  covers the token sender's side of this hand-off; the requester's side is
  implied by the copyset tree remaining a tree.)
* **Freeze messages carry the absolute frozen set** and are re-sent to
  potential granters only when the set changes, so shrinkage doubles as
  the unfreeze notification.
* **Upgrade requests are queued at the front** of the token node's queue.
  The upgrader holds ``U`` (and hence the token — any ``U`` grant is a
  token transfer), so every queued conflicting request is already waiting
  on the upgrader; serving the upgrade first is the only deadlock-free
  order, which is what "Upgrade Mode Precedes Write Mode" (§3.4) requires.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..errors import LockUsageError, ProtocolError
from ..obs.sink import (
    ENQUEUED,
    FROZEN,
    GRANTED,
    ISSUED,
    RELEASED,
    RETRANSMITTED,
    ObsSink,
)
from .clock import LamportClock
from .messages import (
    Envelope,
    FreezeMessage,
    GrantMessage,
    LockId,
    Message,
    NodeId,
    ReleaseMessage,
    RequestId,
    RequestMessage,
    TokenMessage,
    fresh_attachment_seq,
)
from .modes import (
    LockMode,
    REAL_MODES,
    child_can_grant,
    compatible,
    max_mode,
    freeze_set,
    should_queue,
    strictly_weaker,
    token_can_grant,
    token_transfer_required,
)

#: Signature of the grant listener: ``(lock_id, granted_mode, ctx)``.
GrantListener = Callable[[LockId, LockMode, object], None]


def _noop_listener(lock_id: LockId, mode: LockMode, ctx: object) -> None:
    """Default listener used when the caller does not need callbacks."""


@dataclasses.dataclass(frozen=True)
class ProtocolOptions:
    """Feature switches for ablation studies (DESIGN.md experiments A1-A3).

    All switches default to the full protocol.  Disabling one removes the
    corresponding optimization/mechanism:

    * ``freezing`` — Rule 6.  Off: the token never freezes modes, so
      compatible newcomers can overtake queued incompatible requests
      indefinitely (the §3.3 starvation scenario).
    * ``local_queues`` — Rule 4.1 / Table 2(a).  Off: non-token nodes
      always forward ungrantable requests instead of queueing.
    * ``child_grants`` — Rule 3.1 / Table 1(b).  Off: only the token node
      grants; the copyset tree degenerates to a star below the token.
    * ``local_reentry`` — Rule 2's zero-message path.  Off: every request
      goes through messages even when the owned mode already suffices.
    """

    freezing: bool = True
    local_queues: bool = True
    child_grants: bool = True
    local_reentry: bool = True
    #: Extension (off by default = the published protocol): order local
    #: queues by request priority (higher first; FIFO within a priority
    #: level) instead of pure FIFO.  Implements the "strict priority
    #: ordering" arbitration of the authors' prior work [11, 12].  Strict
    #: priorities deliberately allow a high-priority stream to defer
    #: low-priority requests indefinitely.
    priority_scheduling: bool = False
    #: Extension (off by default = the published protocol, which assumes
    #: reliable FIFO delivery): make every handler idempotent under
    #: message duplication and retransmission, and enable the recovery
    #: hooks (:meth:`evict_child`, :meth:`regenerate_token`, ...) used by
    #: :mod:`repro.faults`.  Duplicate requests are answered by re-sending
    #: the original grant (same attachment epoch); duplicate grants,
    #: tokens and stale-epoch tokens are dropped instead of raising
    #: :class:`~repro.errors.ProtocolError`.
    recovery: bool = False


#: The full protocol as published.
FULL_PROTOCOL = ProtocolOptions()

#: How many past grants each automaton remembers for duplicate-request
#: replay under ``recovery`` (bounded so long runs stay O(1) per node).
RECENT_GRANT_MEMORY = 128


class HierarchicalLockAutomaton:
    """Per-(node, lock) state machine of the hierarchical locking protocol.

    Parameters
    ----------
    node_id:
        Identity of the hosting node.
    lock_id:
        Name of the lock this automaton manages.
    clock:
        The node's shared Lamport clock (FIFO request ordering).
    parent:
        Initial parent pointer; ``None`` iff this node starts as the token
        node.  Initially all nodes point (directly or transitively) at the
        token node, as in the paper ("initially, the root is the token
        owner").
    has_token:
        Whether this node initially holds the token.
    listener:
        Callback invoked as ``listener(lock_id, mode, ctx)`` whenever a
        request issued through :meth:`request` or :meth:`upgrade` is
        granted.  May be invoked synchronously from within ``request``.
    """

    def __init__(
        self,
        node_id: NodeId,
        lock_id: LockId,
        clock: LamportClock,
        parent: Optional[NodeId],
        has_token: bool,
        listener: GrantListener = _noop_listener,
        options: ProtocolOptions = FULL_PROTOCOL,
    ) -> None:
        if has_token and parent is not None:
            raise ProtocolError("the token node must not have a parent")
        if not has_token and parent is None:
            raise ProtocolError("non-token nodes need an initial parent")
        self._node_id = node_id
        self._lock_id = lock_id
        self._clock = clock
        self._parent = parent
        self._has_token = has_token
        self._listener = listener
        self._options = options
        self._held: Dict[LockMode, int] = {}
        self._children: Dict[NodeId, LockMode] = {}
        self._queue: List[RequestMessage] = []
        self._frozen: FrozenSet[LockMode] = frozenset()
        self._pending: Optional[RequestMessage] = None
        self._pending_ctx: object = None
        # Attachment epochs: ``_attach_seq`` is the epoch of this node's
        # current attachment at its parent; ``_child_seqs`` records, per
        # child, the epoch of the newest attachment this node issued.
        # Releases older than the recorded epoch are stale and ignored
        # (see GrantMessage's docstring for the race this prevents).
        self._attach_seq = 0
        self._child_seqs: Dict[NodeId, int] = {}
        # Recovery state (only consulted under ``options.recovery``):
        # the token incarnation floor — tokens with a lower epoch are
        # stale copies from before a regeneration — and a bounded memory
        # of grants issued, so a duplicated/retransmitted request can be
        # answered by replaying the original grant verbatim (same mode,
        # same attachment epoch) instead of minting a conflicting one.
        self._token_epoch = 0
        self._recent_grants: "OrderedDict[object, Tuple[LockMode, int]]" = (
            OrderedDict()
        )
        #: Optional trace callback ``(node_id, event, detail)`` for the
        #: verification tooling; None in production paths.
        self.trace_hook: Optional[Callable[[NodeId, str, str], None]] = None
        #: Optional observability sink (see :mod:`repro.obs`); ``None``
        #: keeps every hook site a single attribute test.
        self.obs: Optional[ObsSink] = None
        #: Optional durability journal (see :mod:`repro.persist`); same
        #: ``None``-gated pattern as ``obs`` so runs without durability
        #: stay bit-identical.
        self.persist = None
        #: Optional flight recorder (see :mod:`repro.obs.flightrec`);
        #: same ``None``-gated pattern.  During replay this holds the
        #: replay feed, which supplies recorded serials to
        #: :meth:`_mint_serial`.
        self.flightrec = None
        # Durable-rejoin state (only meaningful under ``options.recovery``
        # with a journal attached): while ``_custody_pending`` a restored
        # token holder answers probes but grants nothing — its token
        # custody is unconfirmed until the fencing handshake settles.
        # ``_provisional_children`` holds restored copyset entries not yet
        # re-confirmed by live child activity; they over-approximate the
        # owned mode (safe: blocks, never violates Rule 1) and are expired
        # at the end of the rejoin settle window to restore liveness.
        self._custody_pending = False
        self._provisional_children: set = set()
        self._local_serial = 0
        # Lease fencing (recovery extension, see repro.leases): the fence
        # floor is the highest revoked fencing token observed for this
        # lock — messages presenting a positive token at or below it come
        # from a holder whose lease expired and are dropped.  While
        # ``_lease_fenced`` (this node lost quorum contact past its lease
        # duration and force-released its holds) the automaton grants
        # nothing, like custody fencing.
        self._fence_floor = 0
        self._lease_fenced = False
        # Graceful-departure state (see repro.membership): a departing
        # node grants nothing and refuses new local requests — it only
        # forwards, drains and hands off, so the copyset around it can
        # be spliced without a Rule-1 window.
        self._departing = False

    def _trace(self, event: str, detail: str = "") -> None:
        if self.trace_hook is not None:
            self.trace_hook(self._node_id, event, detail)

    # -- observability gauges (no-ops while ``self.obs`` is None) ------

    def _obs_queue(self) -> None:
        if self.obs is not None:
            self.obs.queue_depth(self._node_id, self._lock_id, len(self._queue))

    def _obs_copyset(self) -> None:
        if self.obs is not None:
            self.obs.copyset_size(
                self._node_id, self._lock_id, len(self._children)
            )

    def _obs_frozen(self) -> None:
        if self.obs is not None:
            self.obs.freeze_size(self._node_id, self._lock_id, len(self._frozen))

    def _persist(self, kind: str) -> None:
        """Journal the automaton's full state after a *kind* transition.

        Records are written before the triggering messages leave the node
        (the caller dispatches envelopes only after the handler returns),
        which is what makes the log write-ahead.
        """

        if self.persist is not None:
            self.persist.record(self, kind)

    # -- flight recording (no-ops while ``self.flightrec`` is None) ----

    def _mint_serial(self) -> int:
        """Draw a request serial / attachment epoch.

        Routed through the flight recorder when one is attached: the
        global counter's values depend on cross-node interleaving, so the
        recorder logs each drawn value (and replay feeds them back).
        """

        if self.flightrec is not None:
            return self.flightrec.mint_serial()
        return fresh_attachment_seq()

    def _flight_op(self, op: str, **args) -> None:
        if self.flightrec is not None:
            self.flightrec.record_op(self._lock_id, op, args)

    # ------------------------------------------------------------------
    # Introspection (read-only views used by tests, monitors, metrics).
    # ------------------------------------------------------------------

    @property
    def node_id(self) -> NodeId:
        """Identity of the hosting node."""

        return self._node_id

    @property
    def lock_id(self) -> LockId:
        """Name of the lock managed by this automaton."""

        return self._lock_id

    @property
    def has_token(self) -> bool:
        """Whether this node currently holds the token (is the root)."""

        return self._has_token

    @property
    def parent(self) -> Optional[NodeId]:
        """Current parent pointer (``None`` at the token node)."""

        return self._parent

    @property
    def token_epoch(self) -> int:
        """Highest token incarnation observed (recovery extension)."""

        return self._token_epoch

    @property
    def recent_grant_keys(self) -> Tuple[object, ...]:
        """Request ids of remembered grants (for explorer signatures)."""

        return tuple(self._recent_grants)

    @property
    def fence_floor(self) -> int:
        """Highest revoked fencing token observed (lease extension)."""

        return self._fence_floor

    @property
    def lease_fenced(self) -> bool:
        """True once this node self-fenced after losing quorum contact."""

        return self._lease_fenced

    @property
    def departing(self) -> bool:
        """True while this node is gracefully leaving (membership layer)."""

        return self._departing

    def child_attachment_seq(self, node: NodeId) -> int:
        """Recorded attachment epoch for child *node* (0 if unrecorded)."""

        return self._child_seqs.get(node, 0)

    @property
    def children(self) -> Dict[NodeId, LockMode]:
        """Copy of the copyset: child node → its recorded owned mode."""

        return dict(self._children)

    @property
    def frozen_modes(self) -> FrozenSet[LockMode]:
        """Modes currently frozen at this node (Rule 6)."""

        return self._frozen

    @property
    def queue_length(self) -> int:
        """Number of locally queued foreign/own requests."""

        return len(self._queue)

    @property
    def queued_requests(self) -> Tuple[RequestMessage, ...]:
        """Snapshot of the local FIFO queue."""

        return tuple(self._queue)

    @property
    def pending_mode(self) -> LockMode:
        """The node's own in-flight request mode (``NONE`` if none)."""

        return self._pending.mode if self._pending is not None else LockMode.NONE

    @property
    def held_modes(self) -> Dict[LockMode, int]:
        """Multiset of modes this node's application currently holds."""

        return {mode: count for mode, count in self._held.items() if count > 0}

    def held_mode(self) -> LockMode:
        """Strongest mode currently held locally (``M_H``)."""

        return max_mode(mode for mode, count in self._held.items() if count > 0)

    def owned_mode(self) -> LockMode:
        """Owned mode ``M_O`` (Definition 3): strongest held in the subtree.

        Computed from local knowledge only — the node's own holds plus the
        recorded owned modes of its copyset children.
        """

        candidates = [m for m, count in self._held.items() if count > 0]
        candidates.extend(self._children.values())
        return max_mode(candidates)

    def is_idle(self) -> bool:
        """True iff this automaton holds nothing and has no activity."""

        return (
            not self.held_modes
            and not self._children
            and not self._queue
            and self._pending is None
        )

    def snapshot(self):
        """Read-only structured view for live monitoring.

        Returns a :class:`repro.obs.live.LockSnapshot`.  This is a pure
        read: it never mutates protocol state, touches RNG streams or
        emits messages, so monitored runs stay bit-identical to
        unmonitored ones.
        """

        from ..obs.live import LockSnapshot, QueueEntry

        return LockSnapshot(
            lock=self._lock_id,
            believes_token=self._has_token,
            parent=self._parent,
            children=tuple(
                sorted(
                    (child, str(mode))
                    for child, mode in self._children.items()
                )
            ),
            held=tuple(
                sorted(
                    (str(mode), count)
                    for mode, count in self._held.items()
                    if count > 0
                )
            ),
            pending=(
                str(self._pending.mode) if self._pending is not None else None
            ),
            queue=tuple(
                QueueEntry(
                    origin=msg.origin,
                    mode=str(msg.mode),
                    key=f"{msg.request_id.origin}.{msg.request_id.serial}",
                )
                for msg in self._queue
            ),
            frozen=tuple(sorted(str(mode) for mode in self._frozen)),
            token_epoch=self._token_epoch,
            fenced=self._lease_fenced,
        )

    # ------------------------------------------------------------------
    # Application API: request / release / upgrade.
    # ------------------------------------------------------------------

    def _grants_blocked(self) -> bool:
        """True while this automaton must not self-grant or serve grants.

        Covers both fencing regimes — restored token custody awaiting its
        probe handshake, and a lease self-fence after quorum loss — plus
        a graceful departure in progress.
        """

        return self._custody_pending or self._lease_fenced or self._departing

    def request(
        self, mode: LockMode, ctx: object = None, priority: int = 0
    ) -> List[Envelope]:
        """Request the lock in *mode* (Rule 2).

        Returns the protocol messages to transmit.  The grant is reported
        through the listener — possibly synchronously, when the request is
        resolved locally without messages (the paper's key optimization:
        a node already owning a compatible mode at least as strong enters
        its critical section immediately).

        *priority* only matters under ``ProtocolOptions.priority_scheduling``.
        """

        self._flight_op("request", mode=str(mode), priority=priority)
        if mode is LockMode.NONE:
            raise LockUsageError("cannot request the empty mode")
        if self._departing:
            raise LockUsageError(
                f"node {self._node_id} is departing and no longer "
                f"accepts requests for {self._lock_id}"
            )
        if self._pending is not None:
            raise LockUsageError(
                f"node {self._node_id} already has a pending request "
                f"for {self._lock_id}"
            )
        owned = self.owned_mode()
        if self._has_token:
            if (
                token_can_grant(owned, mode)
                and mode not in self._frozen
                and not self._grants_blocked()
            ):
                self._acquire_locally(mode, ctx)
                return []
            request = self._make_own_request(mode, ctx, priority)
            self._enqueue(request)
            return self._refresh_frozen()
        if (
            self._options.local_reentry
            and child_can_grant(owned, mode)
            and mode not in self._frozen
            and not self._lease_fenced
        ):
            # Rule 2, local path: no messages at all.
            self._acquire_locally(mode, ctx)
            return []
        request = self._make_own_request(mode, ctx, priority)
        return [self._forward(request)]

    def release(self, mode: LockMode) -> List[Envelope]:
        """Release one hold of *mode* (Rule 5).

        At the token node this re-examines the local queue; at a non-token
        node it propagates a release to the parent iff the owned mode
        weakened (Rule 5.2).
        """

        self._flight_op("release", mode=str(mode))
        if self._held.get(mode, 0) <= 0:
            raise LockUsageError(
                f"node {self._node_id} does not hold {mode} on {self._lock_id}"
            )
        if (
            mode is LockMode.U
            and self._pending is not None
            and self._pending.upgrade
        ):
            raise LockUsageError("cannot release U while an upgrade is pending")
        owned_before = self.owned_mode()
        self._held[mode] -= 1
        if self.obs is not None:
            self.obs.phase(self._node_id, self._lock_id, None, RELEASED, mode)
        self._persist("hold-released")
        return self._after_owned_maybe_changed(owned_before)

    def upgrade(self, ctx: object = None) -> List[Envelope]:
        """Upgrade a held ``U`` lock to ``W`` atomically (Rule 7).

        The holder of ``U`` is always the token node (every ``U`` grant is
        a token transfer), so the conversion is a purely local affair: it
        completes immediately when no other hold exists anywhere, and
        otherwise waits — with ``IR``/``R`` frozen — for the copyset to
        drain.  The ``U`` hold is never given up in between, which is
        exactly how upgrade locks prevent the read-then-write deadlock.
        """

        self._flight_op("upgrade")
        if self._held.get(LockMode.U, 0) <= 0:
            raise LockUsageError(
                f"node {self._node_id} holds no U lock on {self._lock_id}"
            )
        if not self._has_token:
            raise ProtocolError(
                "a U holder must be the token node; state is corrupted"
            )
        if self._pending is not None:
            raise LockUsageError("a request is already pending on this lock")
        if self._upgrade_possible_now() and not self._grants_blocked():
            self._held[LockMode.U] -= 1
            if self.obs is not None:
                self.obs.phase(
                    self._node_id, self._lock_id, None, RELEASED, LockMode.U
                )
            self._acquire_locally(LockMode.W, ctx)
            return []
        timestamp = self._clock.tick()
        request = RequestMessage(
            lock_id=self._lock_id,
            sender=self._node_id,
            origin=self._node_id,
            mode=LockMode.W,
            request_id=RequestId(
                timestamp=timestamp,
                origin=self._node_id,
                serial=self._mint_serial(),
            ),
            upgrade=True,
        )
        self._pending = request
        self._pending_ctx = ctx
        # Upgrades take precedence over queued requests (§3.4): every
        # queued conflicting request is blocked on this node's U anyway.
        self._queue.insert(0, request)
        if self.obs is not None:
            key = request.request_id
            self.obs.phase(self._node_id, self._lock_id, key, ISSUED, LockMode.W)
            self.obs.phase(
                self._node_id, self._lock_id, key, ENQUEUED, LockMode.W
            )
            self._obs_queue()
        self._persist("upgrade-queued")
        return self._refresh_frozen()

    def downgrade(self, held: LockMode, to: LockMode) -> List[Envelope]:
        """Atomically weaken a hold of *held* to *to* (extension).

        The CORBA concurrency service's ``change_mode`` allows weakening a
        held lock without a release/re-acquire window.  The swap is safe
        exactly when every mode compatible with *held* is also compatible
        with *to* (so no concurrent holder becomes conflicting) and *to*
        is strictly weaker.  Legal downgrades: W→{IW,U,R,IR}, U→{R,IR},
        IW→{IR}, R→{IR}.  Illegal ones (e.g. IW→U, which would conflict
        with a concurrent IW holder) raise :class:`LockUsageError`.
        """

        self._flight_op("downgrade", held=str(held), to=str(to))
        if self._held.get(held, 0) <= 0:
            raise LockUsageError(
                f"node {self._node_id} does not hold {held} on {self._lock_id}"
            )
        if to is LockMode.NONE:
            raise LockUsageError("downgrade target may not be NONE; release instead")
        if not strictly_weaker(to, held):
            raise LockUsageError(f"{to} is not strictly weaker than {held}")
        for other in REAL_MODES:
            if compatible(held, other) and not compatible(to, other):
                raise LockUsageError(
                    f"downgrade {held}→{to} would conflict with concurrent "
                    f"{other} holders"
                )
        if self._pending is not None and self._pending.upgrade:
            raise LockUsageError("cannot downgrade while an upgrade is pending")
        owned_before = self.owned_mode()
        self._held[held] -= 1
        self._held[to] = self._held.get(to, 0) + 1
        if self.obs is not None:
            # The old hold's span closes; the weakened hold is a fresh
            # locally-granted span so a later release() can match it.
            self.obs.phase(self._node_id, self._lock_id, None, RELEASED, held)
            self._local_serial += 1
            key = ("L", self._node_id, self._local_serial)
            self.obs.phase(self._node_id, self._lock_id, key, ISSUED, to)
            self.obs.phase(self._node_id, self._lock_id, key, GRANTED, to)
        self._persist("hold-downgraded")
        return self._after_owned_maybe_changed(owned_before)

    # ------------------------------------------------------------------
    # Transport API.
    # ------------------------------------------------------------------

    def handle(self, message: Message) -> List[Envelope]:
        """Process one incoming protocol message, returning replies."""

        if message.lock_id != self._lock_id:
            raise ProtocolError(
                f"message for lock {message.lock_id!r} delivered to "
                f"automaton of {self._lock_id!r}"
            )
        if self.flightrec is not None:
            self.flightrec.record_msg(self._lock_id, message)
        if self._options.recovery and self._stale_fencing_token(message):
            return []
        if isinstance(message, RequestMessage):
            return self._handle_request(message)
        if isinstance(message, GrantMessage):
            return self._handle_grant(message)
        if isinstance(message, TokenMessage):
            return self._handle_token(message)
        if isinstance(message, ReleaseMessage):
            return self._handle_release(message)
        if isinstance(message, FreezeMessage):
            return self._handle_freeze(message)
        raise ProtocolError(f"unknown message type {type(message).__name__}")

    def _stale_fencing_token(self, message: Message) -> bool:
        """True iff *message* presents a fencing token at/below the floor.

        ``0`` (the default) means the sender is not fenced at all; only a
        positive token can be stale.  A stale token identifies traffic
        from a holder whose lease was revoked — acting on it could
        resurrect a hold the revocation already released (Rule 1).
        """

        token = getattr(message, "fencing_token", 0)
        return 0 < token <= self._fence_floor

    # ------------------------------------------------------------------
    # Message handlers.
    # ------------------------------------------------------------------

    def _handle_request(self, msg: RequestMessage) -> List[Envelope]:
        """Rule 3 (grant), Rule 4 (queue/forward) for an incoming request."""

        self._clock.observe(msg.request_id.timestamp)
        if self._options.recovery:
            if msg.origin == self._node_id and (
                self._pending is None
                or self._pending.request_id != msg.request_id
            ):
                # An echo of our own request that is no longer pending
                # (duplicated in flight, or retransmitted after the grant
                # raced it).  Re-granting it would corrupt the granter's
                # copyset record for us; the request is already settled.
                return []
            if msg.request_id in self._recent_grants:
                return [self._replay_grant(msg)]
            if any(q.request_id == msg.request_id for q in self._queue):
                # Already queued here; the retransmit changes nothing.
                return []
        owned = self.owned_mode()
        if self._has_token:
            if (
                token_can_grant(owned, msg.mode)
                and msg.mode not in self._frozen
                and not self._grants_blocked()
            ):
                return self._grant_from_token(msg)
            self._enqueue(msg)
            return self._refresh_frozen()
        if (
            self._options.child_grants
            and child_can_grant(owned, msg.mode)
            and msg.mode not in self._frozen
            and msg.origin != self._node_id
            and not self._lease_fenced
            and not self._departing
        ):
            return [self._grant_copy(msg)]
        if (
            self._options.local_queues
            and self._pending is not None
            and msg.origin != self._node_id
            and should_queue(self._pending.mode, msg.mode)
        ):
            self._enqueue(msg)
            return []
        return [self._forward(msg)]

    def _handle_grant(self, msg: GrantMessage) -> List[Envelope]:
        """A granted copy arrives: attach below the granter, serve queue."""

        if self._pending is None or self._pending.request_id != msg.request_id:
            if self._options.recovery:
                if (
                    self._parent == msg.sender
                    and self._attach_seq == msg.attachment_seq
                ):
                    # Replay of the attachment we already live under.
                    return []
                if self._parent == msg.sender:
                    if msg.attachment_seq < self._attach_seq:
                        # A cached re-grant minted before our current
                        # attachment (re-sent to cover grant loss) lost a
                        # race with a fresher grant.  Attachment epochs
                        # are globally monotonic, so adopting it would
                        # roll the attachment backwards and every later
                        # release would look stale at the parent, pinning
                        # a ghost copyset entry there forever.
                        return []
                    # The granter re-answered a stale queued duplicate and
                    # re-recorded us under a fresh attachment epoch; adopt
                    # it and re-assert our true owned mode, otherwise our
                    # future releases look stale and the copyset leaks.
                    self._attach_seq = msg.attachment_seq
                    self._persist("attach-refreshed")
                    return [
                        self._release_to(msg.sender, self.owned_mode())
                    ]
                # A granter we are not attached under just recorded us as
                # a child; erase that ghost entry or its copyset pins an
                # owned mode nobody holds.
                return [
                    self._release_to(
                        msg.sender, LockMode.NONE, msg.attachment_seq
                    )
                ]
            raise ProtocolError(
                f"node {self._node_id} received an unexpected grant "
                f"for {self._lock_id}"
            )
        out: List[Envelope] = []
        owned_before = self.owned_mode()
        old_parent = self._parent
        old_seq = self._attach_seq
        self._parent = msg.sender
        self._frozen = msg.frozen
        self._attach_seq = msg.attachment_seq
        pending, ctx = self._pending, self._pending_ctx
        self._pending = None
        self._pending_ctx = None
        if old_parent is not None and old_parent != msg.sender:
            if owned_before is not LockMode.NONE:
                # Detach from the former parent: our whole subtree is now
                # accounted for under the granter.
                out.append(self._release_to(old_parent, LockMode.NONE, old_seq))
        self._held[pending.mode] = self._held.get(pending.mode, 0) + 1
        owned_now = self.owned_mode()
        if owned_now is not pending.mode:
            # Defensive update so the new parent's copyset entry dominates
            # our actual owned mode (it normally already does).
            out.append(self._release_to(msg.sender, owned_now))
        if self.obs is not None:
            self.obs.phase(
                self._node_id,
                self._lock_id,
                pending.request_id,
                GRANTED,
                pending.mode,
            )
            self._obs_frozen()
        self._persist("grant-attached")
        self._listener(self._lock_id, pending.mode, ctx)
        out.extend(self._drain_queue_nontoken())
        return out

    def _handle_token(self, msg: TokenMessage) -> List[Envelope]:
        """The token arrives: become the root, merge queues, serve them."""

        if self._options.recovery and msg.epoch < self._token_epoch:
            # A stale token from before a regeneration; discard it so the
            # lock space cannot end up with two live tokens.
            return []
        if self._has_token:
            if self._options.recovery:
                return []  # Duplicate of the transfer we already received.
            raise ProtocolError(
                f"node {self._node_id} received a token it already holds"
            )
        if self._pending is None or self._pending.request_id != msg.request_id:
            if self._options.recovery:
                # The sender answered a stale queued duplicate of a
                # request that was settled another way.  The token is
                # nonetheless genuine — discarding it would wedge the
                # lock space forever — so take custody without granting.
                return self._adopt_token(msg)
            raise ProtocolError(
                f"node {self._node_id} received an unexpected token "
                f"for {self._lock_id}"
            )
        out: List[Envelope] = []
        owned_before = self.owned_mode()
        old_parent = self._parent
        old_seq = self._attach_seq
        self._has_token = True
        self._parent = None
        self._frozen = msg.frozen
        self._token_epoch = msg.epoch
        self._attach_seq = self._mint_serial()
        if old_parent is not None and old_parent != msg.sender:
            if owned_before is not LockMode.NONE:
                out.append(self._release_to(old_parent, LockMode.NONE, old_seq))
        self._child_seqs[msg.sender] = msg.prev_owner_seq
        if msg.prev_owner_mode is not LockMode.NONE:
            self._children[msg.sender] = msg.prev_owner_mode
        pending, ctx = self._pending, self._pending_ctx
        self._pending = None
        self._pending_ctx = None
        self._held[pending.mode] = self._held.get(pending.mode, 0) + 1
        merged = list(self._queue) + [
            q for q in msg.queue if q.request_id != pending.request_id
        ]
        merged.sort(key=self._queue_sort_key)
        if self._options.recovery:
            # A duplicated request may have been queued at two different
            # hops and now meet in the merged queue; keep the first.
            seen, unique = set(), []
            for entry in merged:
                if entry.request_id not in seen:
                    seen.add(entry.request_id)
                    unique.append(entry)
            merged = unique
        self._queue = merged
        self._provisional_children.discard(msg.sender)
        self._persist("token-acquired")
        if self.obs is not None:
            self.obs.phase(
                self._node_id,
                self._lock_id,
                pending.request_id,
                GRANTED,
                pending.mode,
            )
            self._obs_queue()
            self._obs_copyset()
            self._obs_frozen()
        self._listener(self._lock_id, pending.mode, ctx)
        out.extend(self._check_queue())
        return out

    def _adopt_token(self, msg: TokenMessage) -> List[Envelope]:
        """Take custody of a token that answers no pending request of ours.

        Recovery-only sibling of the tail of :meth:`_handle_token`: become
        the root, absorb the travelling queue and the previous owner's
        copyset record, enqueue our own outstanding request (if any) so it
        is served locally, and run the queue.  No grant is delivered —
        the request the sender thought it was answering was settled
        through another path.
        """

        out: List[Envelope] = []
        owned_before = self.owned_mode()
        old_parent = self._parent
        old_seq = self._attach_seq
        self._has_token = True
        self._parent = None
        self._frozen = msg.frozen
        self._token_epoch = msg.epoch
        self._attach_seq = self._mint_serial()
        if old_parent is not None and old_parent != msg.sender:
            if owned_before is not LockMode.NONE:
                out.append(self._release_to(old_parent, LockMode.NONE, old_seq))
        self._child_seqs[msg.sender] = msg.prev_owner_seq
        if msg.prev_owner_mode is not LockMode.NONE:
            self._children[msg.sender] = msg.prev_owner_mode
        merged = list(self._queue) + list(msg.queue)
        if self._pending is not None and not any(
            q.request_id == self._pending.request_id for q in merged
        ):
            merged.append(self._pending)
        merged.sort(key=self._queue_sort_key)
        seen, unique = set(), []
        for entry in merged:
            if entry.request_id not in seen:
                seen.add(entry.request_id)
                unique.append(entry)
        self._queue = unique
        self._provisional_children.discard(msg.sender)
        self._persist("token-adopted")
        if self.obs is not None:
            self.obs.fault("adopt-token", self._node_id)
            self._obs_queue()
            self._obs_copyset()
            self._obs_frozen()
        out.extend(self._check_queue())
        return out

    def _handle_release(self, msg: ReleaseMessage) -> List[Envelope]:
        """A child's owned mode changed (Rule 5): update the copyset."""

        recorded_seq = self._child_seqs.get(msg.sender)
        if recorded_seq is not None and msg.attachment_seq < recorded_seq:
            # Stale: sent before the attachment currently on record.
            return []
        if (
            not self._has_token
            and msg.sender == self._parent
            and msg.attachment_seq < self._attach_seq
        ):
            # Crossed lineage: our own parent announcing itself as our
            # child, decided before we attached under it (e.g. its
            # reassert to the old pre-regeneration parent racing our
            # custody-fence demotion).  Recording it would make each
            # side a child of the other, pinning both owned modes at
            # the announced mode forever.  The newer attachment
            # decision — ours — wins; the sender's pointer is the
            # stale one and is corrected by the lineage it raced.
            return []
        owned_before = self.owned_mode()
        if msg.new_mode is LockMode.NONE:
            self._children.pop(msg.sender, None)
        else:
            self._children[msg.sender] = msg.new_mode
        # A live release re-confirms a restored (provisional) child entry.
        self._provisional_children.discard(msg.sender)
        self._obs_copyset()
        self._persist("copyset-change")
        return self._after_owned_maybe_changed(owned_before)

    def _handle_freeze(self, msg: FreezeMessage) -> List[Envelope]:
        """Adopt the token's frozen set and propagate it (Rule 6)."""

        if msg.sender != self._parent:
            # Stale freeze from a former parent; current state supersedes.
            return []
        old = self._frozen
        self._frozen = msg.frozen
        self._obs_frozen()
        self._persist("freeze-change")
        return self._propagate_freeze(old, msg.frozen)

    # ------------------------------------------------------------------
    # Granting helpers.
    # ------------------------------------------------------------------

    def _grant_from_token(self, msg: RequestMessage) -> List[Envelope]:
        """Serve a request at the token node (Rule 3.2)."""

        owned = self.owned_mode()
        if msg.origin == self._node_id:
            # The token node's own queued request becomes servable.
            pending, ctx = self._pending, self._pending_ctx
            if pending is None or pending.request_id != msg.request_id:
                if self._options.recovery:
                    return []  # A duplicate of an already-served request.
                raise ProtocolError("token node lost track of its own request")
            self._pending = None
            self._pending_ctx = None
            self._acquire_locally(msg.mode, ctx, key=msg.request_id)
            return []
        if token_transfer_required(owned, msg.mode):
            return self._transfer_token(msg)
        return [self._grant_copy(msg)]

    def _grant_copy(self, msg: RequestMessage) -> Envelope:
        """Grant a copy: the requester becomes a child (Rule 3, case 1)."""

        recorded = self._children.get(msg.origin, LockMode.NONE)
        self._children[msg.origin] = max_mode((recorded, msg.mode))
        self._provisional_children.discard(msg.origin)
        self._obs_copyset()
        attachment_seq = self._mint_serial()
        self._child_seqs[msg.origin] = attachment_seq
        if self._options.recovery:
            self._recent_grants[msg.request_id] = (msg.mode, attachment_seq)
            while len(self._recent_grants) > RECENT_GRANT_MEMORY:
                self._recent_grants.popitem(last=False)
        self._persist("copyset-change")
        return Envelope(
            msg.origin,
            GrantMessage(
                lock_id=self._lock_id,
                sender=self._node_id,
                mode=msg.mode,
                request_id=msg.request_id,
                frozen=self._frozen,
                attachment_seq=attachment_seq,
                trace=msg.trace,
            ),
        )

    def _replay_grant(self, msg: RequestMessage) -> Envelope:
        """Re-answer a duplicated request with its original grant.

        The replay carries the **same** attachment epoch as the first
        grant: minting a fresh one would out-date the child's recorded
        epoch and make its subsequent releases look stale (a silent
        copyset leak).  The duplicate grant itself is dropped by the
        (recovery-mode) receiver if the original already arrived.
        """

        mode, attachment_seq = self._recent_grants[msg.request_id]
        return Envelope(
            msg.origin,
            GrantMessage(
                lock_id=self._lock_id,
                sender=self._node_id,
                mode=mode,
                request_id=msg.request_id,
                frozen=self._frozen,
                attachment_seq=attachment_seq,
                trace=msg.trace,
            ),
        )

    def _transfer_token(self, msg: RequestMessage) -> List[Envelope]:
        """Hand the token (and local queue) to the requester (Rule 3.2)."""

        self._children.pop(msg.origin, None)
        self._provisional_children.discard(msg.origin)
        self._obs_copyset()
        # Filter out releases the requester sent before becoming the root.
        self._child_seqs[msg.origin] = self._mint_serial()
        prev_owner_mode = self.owned_mode()
        queue = tuple(self._queue)
        self._queue = []
        self._obs_queue()
        self._has_token = False
        self._parent = msg.origin
        self._attach_seq = self._mint_serial()
        # Journal before the token leaves: a crash between this record
        # and the send is indistinguishable (to recovery) from a crash
        # just after the send, and the probe/fence handshake covers both.
        self._persist("token-handoff")
        token = TokenMessage(
            lock_id=self._lock_id,
            sender=self._node_id,
            granted_mode=msg.mode,
            request_id=msg.request_id,
            prev_owner_mode=prev_owner_mode,
            queue=queue,
            frozen=self._frozen,
            prev_owner_seq=self._attach_seq,
            epoch=self._token_epoch,
            trace=msg.trace,
        )
        return [Envelope(msg.origin, token)]

    def _acquire_locally(
        self, mode: LockMode, ctx: object, key: object = None
    ) -> None:
        """Enter the critical section without messages (Rule 2 / self-grant).

        *key* identifies the span of an already-issued request being
        served from the queue; ``None`` means a zero-message local grant,
        whose span is minted here so it still appears in traces.
        """

        self._held[mode] = self._held.get(mode, 0) + 1
        if self.obs is not None:
            if key is None:
                self._local_serial += 1
                key = ("L", self._node_id, self._local_serial)
                self.obs.phase(self._node_id, self._lock_id, key, ISSUED, mode)
            self.obs.phase(self._node_id, self._lock_id, key, GRANTED, mode)
        self._persist("hold-granted")
        self._listener(self._lock_id, mode, ctx)

    # ------------------------------------------------------------------
    # Queue management.
    # ------------------------------------------------------------------

    def _queue_sort_key(self, msg: RequestMessage):
        """Service order: upgrades first; then priority; then FIFO."""

        return (
            0 if msg.upgrade else 1,
            -msg.priority if self._options.priority_scheduling else 0,
            msg.request_id.sort_key(),
        )

    def _enqueue(self, msg: RequestMessage) -> None:
        """Insert a request into the local queue (FIFO, or priority order
        under the priority-scheduling extension)."""

        self._queue.append(msg)
        if self._options.priority_scheduling:
            self._queue.sort(key=self._queue_sort_key)
        if self.obs is not None:
            self.obs.phase(
                msg.origin, self._lock_id, msg.request_id, ENQUEUED, msg.mode
            )
            if msg.mode in self._frozen:
                self.obs.phase(
                    msg.origin, self._lock_id, msg.request_id, FROZEN, msg.mode
                )
            self._obs_queue()
        self._persist("queue-change")

    def _check_queue(self) -> List[Envelope]:
        """Serve the local queue head-first at the token node (Fig. 4).

        Strictly FIFO: stops at the first unservable head.  The frozen set
        exists to protect the queue, so the head itself is served as soon
        as the owned mode allows, regardless of freezing.
        """

        if not self._has_token or self._grants_blocked():
            return []
        out: List[Envelope] = []
        while self._queue:
            head = self._queue[0]
            owned = self.owned_mode()
            if head.upgrade:
                if not self._upgrade_possible_now():
                    break
                self._queue.pop(0)
                pending, ctx = self._pending, self._pending_ctx
                if pending is None or pending.request_id != head.request_id:
                    if self._options.recovery:
                        continue  # Stale duplicate in the queue.
                    raise ProtocolError("upgrade request lost its context")
                self._pending = None
                self._pending_ctx = None
                self._held[LockMode.U] -= 1
                if self.obs is not None:
                    self.obs.phase(
                        self._node_id,
                        self._lock_id,
                        None,
                        RELEASED,
                        LockMode.U,
                    )
                self._acquire_locally(LockMode.W, ctx, key=head.request_id)
                continue
            if not token_can_grant(owned, head.mode):
                break
            self._queue.pop(0)
            if head.origin == self._node_id:
                pending, ctx = self._pending, self._pending_ctx
                if pending is None or pending.request_id != head.request_id:
                    if self._options.recovery:
                        continue  # Stale duplicate in the queue.
                    raise ProtocolError("token node lost track of its request")
                self._pending = None
                self._pending_ctx = None
                self._acquire_locally(head.mode, ctx, key=head.request_id)
                continue
            if token_transfer_required(owned, head.mode):
                out.extend(self._transfer_token(head))
                return out  # The queue travelled with the token.
            out.append(self._grant_copy(head))
        self._obs_queue()
        out.extend(self._refresh_frozen())
        return out

    def _drain_queue_nontoken(self) -> List[Envelope]:
        """After a copy grant: serve or forward everything queued (Rule 4)."""

        out: List[Envelope] = []
        queued, self._queue = self._queue, []
        if queued:
            self._obs_queue()
        for msg in queued:
            owned = self.owned_mode()
            if (
                self._options.child_grants
                and child_can_grant(owned, msg.mode)
                and msg.mode not in self._frozen
            ):
                out.append(self._grant_copy(msg))
            else:
                out.append(self._forward(msg))
        return out

    def _upgrade_possible_now(self) -> bool:
        """True iff the atomic U→W swap can happen right now (Rule 7)."""

        only_hold_is_u = (
            self._held.get(LockMode.U, 0) == 1
            and sum(self._held.values()) == 1
        )
        return only_hold_is_u and not self._children

    # ------------------------------------------------------------------
    # Release / freeze plumbing.
    # ------------------------------------------------------------------

    def _after_owned_maybe_changed(self, owned_before: LockMode) -> List[Envelope]:
        """Common tail of release paths (Rule 5)."""

        out: List[Envelope] = []
        if self._has_token:
            out.extend(self._check_queue())
            return out
        owned_now = self.owned_mode()
        if owned_now is not owned_before and self._parent is not None:
            out.append(self._release_to(self._parent, owned_now))
        return out

    def _release_to(
        self, dest: NodeId, new_mode: LockMode, seq: Optional[int] = None
    ) -> Envelope:
        """Build a release/update message toward *dest*."""

        return Envelope(
            dest,
            ReleaseMessage(
                lock_id=self._lock_id,
                sender=self._node_id,
                new_mode=new_mode,
                attachment_seq=self._attach_seq if seq is None else seq,
            ),
        )

    def _refresh_frozen(self) -> List[Envelope]:
        """Recompute the frozen set from the queue, notify granters (Rule 6)."""

        if not self._has_token or self._grants_blocked():
            return []
        frozen: set = set()
        if self._options.freezing:
            owned = self.owned_mode()
            for msg in self._queue:
                frozen.update(freeze_set(owned, msg.mode))
        new = frozenset(frozen)
        if new == self._frozen:
            return []
        old = self._frozen
        self._frozen = new
        self._obs_frozen()
        self._persist("freeze-change")
        return self._propagate_freeze(old, new)

    def _propagate_freeze(
        self, old: FrozenSet[LockMode], new: FrozenSet[LockMode]
    ) -> List[Envelope]:
        """Send the new absolute frozen set to affected potential granters."""

        changed = old ^ new
        if not changed:
            return []
        out: List[Envelope] = []
        for child, child_mode in self._children.items():
            if any(child_can_grant(child_mode, mode) for mode in changed):
                out.append(
                    Envelope(
                        child,
                        FreezeMessage(
                            lock_id=self._lock_id,
                            sender=self._node_id,
                            frozen=new,
                        ),
                    )
                )
        return out

    # ------------------------------------------------------------------
    # Request construction / forwarding.
    # ------------------------------------------------------------------

    def _make_own_request(
        self, mode: LockMode, ctx: object, priority: int = 0
    ) -> RequestMessage:
        """Create and register this node's own request for *mode*."""

        timestamp = self._clock.tick()
        request = RequestMessage(
            lock_id=self._lock_id,
            sender=self._node_id,
            origin=self._node_id,
            mode=mode,
            request_id=RequestId(
                timestamp=timestamp,
                origin=self._node_id,
                serial=self._mint_serial(),
            ),
            priority=priority,
        )
        self._pending = request
        self._pending_ctx = ctx
        if self.obs is not None:
            self.obs.phase(
                self._node_id, self._lock_id, request.request_id, ISSUED, mode
            )
        return request

    def _forward(self, msg: RequestMessage) -> Envelope:
        """Forward a request one hop up the copyset tree."""

        if self._parent is None:
            raise ProtocolError(
                f"node {self._node_id} has no parent to forward a request to"
            )
        return Envelope(
            self._parent, dataclasses.replace(msg, sender=self._node_id)
        )

    # ------------------------------------------------------------------
    # Recovery hooks (driven by repro.faults.recovery.RecoveryManager;
    # all require ``ProtocolOptions.recovery``).
    # ------------------------------------------------------------------

    def _require_recovery(self) -> None:
        if not self._options.recovery:
            raise ProtocolError(
                "recovery hooks need ProtocolOptions(recovery=True)"
            )

    def evict_child(self, node: NodeId) -> List[Envelope]:
        """Forget a crashed child: drop its copyset entry and its requests.

        The dead subtree's holds are gone with it, so the owned mode may
        weaken — which can unblock the local queue (token node) or emit a
        release to the parent (Rule 5.2), exactly as if the child had
        released cleanly.
        """

        self._require_recovery()
        self._flight_op("evict_child", node=node)
        owned_before = self.owned_mode()
        self._children.pop(node, None)
        self._child_seqs.pop(node, None)
        self._provisional_children.discard(node)
        before = len(self._queue)
        self._queue = [q for q in self._queue if q.origin != node]
        if len(self._queue) != before:
            self._obs_queue()
        self._obs_copyset()
        self._persist("child-evicted")
        out = self._after_owned_maybe_changed(owned_before)
        out.extend(self._refresh_frozen())
        return out

    def _evict_new_parent(self, new_parent: NodeId) -> None:
        """Drop a copyset entry for the node we just adopted as parent.

        A node cannot be both our parent and our child: such an entry is
        a relic of a grant made before that node became the root (token
        regeneration adopts the old tree wholesale), and keeping it pins
        a mode nobody below us holds — the root then waits forever for a
        release that can never come (a parent↔child cycle).  The new
        parent's own accounting dominates; evict before ``owned_mode``
        is recomputed so the mode we announce upward excludes the ghost.
        """

        evicted = self._children.pop(new_parent, None)
        self._child_seqs.pop(new_parent, None)
        self._provisional_children.discard(new_parent)
        if evicted is not None:
            self._obs_copyset()

    def reattach(self, new_parent: NodeId, detach: bool = False) -> List[Envelope]:
        """Re-home an orphan under *new_parent* after its parent died.

        Announces the orphan's whole surviving subtree via a release (so
        the new parent's copyset dominates it), then re-forwards anything
        in flight: the node's own pending request and every foreign
        request it had queued (their grants may have died with the old
        parent).  Request duplication is safe — that is what recovery
        mode's dedup is for.

        The old parent always receives a NONE release under the old
        attachment seq: if it is genuinely dead the message is lost
        harmlessly, but if the suspicion was false (heartbeats lost to
        the fault plan) its copyset entry for this node would otherwise
        stay pinned forever — we release to the new parent from now on
        — and the root would wait behind that ghost mode indefinitely.
        (*detach* is kept for call-site documentation: ``True`` marks a
        deliberate escape from a live but stale subtree.)
        """

        self._require_recovery()
        self._flight_op("reattach", parent=new_parent, detach=detach)
        if self._has_token or new_parent == self._node_id:
            return []
        old_parent, old_seq = self._parent, self._attach_seq
        self._parent = new_parent
        self._attach_seq = self._mint_serial()
        self._evict_new_parent(new_parent)
        out: List[Envelope] = []
        owned = self.owned_mode()
        if old_parent is not None and old_parent != new_parent:
            out.append(self._release_to(old_parent, LockMode.NONE, old_seq))
        if owned is not LockMode.NONE:
            out.append(self._release_to(new_parent, owned))
        if self._pending is not None:
            out.append(self._forward(self._pending))
        queued, self._queue = self._queue, []
        if queued:
            self._obs_queue()
        for msg in queued:
            out.append(self._forward(msg))
        self._persist("reattached")
        return out

    def regenerate_token(self, epoch: int) -> List[Envelope]:
        """Become the token node under a fresh incarnation *epoch*.

        Called by the regeneration coordinator once it has established
        (probe + timeout) that no live node holds the token.  *epoch*
        must exceed every epoch observed for this lock, so any stale
        token still in flight from before the crash is discarded on
        arrival (see :meth:`_handle_token`).
        """

        self._require_recovery()
        self._flight_op("regenerate_token", epoch=epoch)
        return self._regenerate(epoch)

    def accept_handoff(self, epoch: int) -> List[Envelope]:
        """Take token custody offered by a departing holder, fenced.

        Identical to :meth:`regenerate_token` except custody starts
        *fenced*: the handoff regeneration must not grant anything (not
        even this node's own queued request) until the leaver's demotion
        release and its children's migration announces have rebuilt the
        copyset here — granting from the not-yet-merged copyset could
        violate Rule 1.  The manager confirms custody through the same
        rejoin settle handshake as a durable restart.  Idempotent: a
        re-sent handoff to the now-root is a no-op.
        """

        self._require_recovery()
        self._flight_op("accept_handoff", epoch=epoch)
        if self._has_token:
            return []
        # Fence before the regeneration body runs its queue check.
        self._custody_pending = True
        return self._regenerate(epoch)

    def _regenerate(self, epoch: int) -> List[Envelope]:
        if self._has_token:
            raise ProtocolError("cannot regenerate a token this node holds")
        if epoch < self._token_epoch:
            raise ProtocolError(
                f"regeneration epoch {epoch} must reach the observed "
                f"floor {self._token_epoch}"
            )
        # Equality is legal: announcing the regeneration *claim* already
        # raised this node's own floor to the claimed epoch.
        self._token_epoch = epoch
        self._has_token = True
        old_parent, old_seq = self._parent, self._attach_seq
        self._parent = None
        self._attach_seq = self._mint_serial()
        self._persist("token-regenerated")
        if self._pending is not None and not any(
            q.request_id == self._pending.request_id for q in self._queue
        ):
            self._enqueue(self._pending)
        if self.obs is not None:
            self.obs.fault("regenerate", self._node_id)
        out: List[Envelope] = []
        if old_parent is not None:
            # Mirror ``reattach``'s old-parent notice: any owned mode we
            # announced under the old attachment dissolved the moment we
            # became root.  Without this a crossed pre-regeneration
            # announce leaves the old parent holding us as a child while
            # we hold it as ours — a parent↔child cycle that pins both
            # owned modes forever and wedges the new root's queue.
            out.append(self._release_to(old_parent, LockMode.NONE, old_seq))
        out.extend(self._check_queue())
        return out

    def raise_fence_floor(self, token: int) -> None:
        """Reject future messages fenced at or below *token*.

        Called when a holder's lease on this lock is revoked: any later
        operation presenting the revoked (or an older) fencing token is
        dropped by :meth:`handle`.
        """

        self._require_recovery()
        self._flight_op("raise_fence_floor", token=int(token))
        if token > self._fence_floor:
            self._fence_floor = int(token)
            self._persist("fence-raised")

    def fence_holds(self) -> Tuple[List[Envelope], List[Tuple[LockMode, int]]]:
        """Self-fence: force-release every local hold, stop granting.

        Invoked by the recovery manager when this node has been unable
        to reach a quorum for a full lease duration: its leases are void
        and peers are about to revoke them, so the application's holds
        are released *here first* (the ordering that keeps revocation
        Rule-1 safe).  The pending request is abandoned and the local
        queue is cleared — queued foreign requests will be retransmitted
        by their origins and re-homed toward the majority.

        Returns ``(envelopes, released)`` where *released* lists the
        ``(mode, count)`` holds that were forcibly dropped, so the
        caller can report them to application-level monitors.
        """

        self._require_recovery()
        self._flight_op("fence_holds")
        if self._lease_fenced:
            return [], []
        self._lease_fenced = True
        released = sorted(
            ((mode, count) for mode, count in self._held.items() if count > 0),
            key=lambda item: str(item[0]),
        )
        owned_before = self.owned_mode()
        for mode, count in released:
            self._held[mode] = 0
            if self.obs is not None:
                for _ in range(count):
                    self.obs.phase(
                        self._node_id, self._lock_id, None, RELEASED, mode
                    )
        self._pending = None
        self._pending_ctx = None
        if self._queue:
            self._queue = []
            self._obs_queue()
        if self.obs is not None:
            self.obs.fault("lease-fence", self._node_id)
        self._persist("lease-fenced")
        out: List[Envelope] = []
        owned_now = self.owned_mode()
        if (
            not self._has_token
            and self._parent is not None
            and owned_now is not owned_before
        ):
            # Rule-1-safe release replayed up the hierarchy: the parent's
            # copyset weakens exactly as if the holds were released
            # cleanly.  Under a partition the message may never arrive —
            # the majority's lease revocation covers that path.
            out.append(self._release_to(self._parent, owned_now))
        return out, released

    def retransmit_pending(self) -> List[Envelope]:
        """Re-send the node's own in-flight request, if any.

        Driven by the recovery manager's per-request retry timer (capped
        exponential backoff).  A token-holding node's pending request is
        queued locally and needs no wire retry.
        """

        self._require_recovery()
        self._flight_op("retransmit_pending")
        if self._pending is None or self._has_token or self._parent is None:
            return []
        if self.obs is not None:
            self.obs.phase(
                self._node_id,
                self._lock_id,
                self._pending.request_id,
                RETRANSMITTED,
                self._pending.mode,
            )
        return [self._forward(self._pending)]

    def observe_epoch(
        self, epoch: int, token_holder: Optional[NodeId] = None
    ) -> List[Envelope]:
        """Learn that a token of incarnation *epoch* exists at *token_holder*.

        Raises this node's epoch floor.  If this node itself holds a
        *stale* token (a regeneration happened while its token copy was
        presumed lost), it demotes: relinquishes the token, re-attaches
        under the announced holder and re-forwards its queue — restoring
        the single-token invariant without losing any queued request.
        """

        self._require_recovery()
        self._flight_op("observe_epoch", epoch=epoch, holder=token_holder)
        if epoch <= self._token_epoch:
            return []
        demote = (
            self._has_token
            and token_holder is not None
            and token_holder != self._node_id
        )
        self._token_epoch = epoch
        if not demote:
            self._persist("epoch-raised")
            return []
        self._has_token = False
        self._parent = token_holder
        self._attach_seq = self._mint_serial()
        self._evict_new_parent(token_holder)
        out: List[Envelope] = []
        owned = self.owned_mode()
        if owned is not LockMode.NONE:
            out.append(self._release_to(token_holder, owned))
        queued, self._queue = self._queue, []
        if queued:
            self._obs_queue()
        for msg in queued:
            if msg.upgrade:
                # Upgrades never leave their origin; a demoted U holder
                # is already a broken state the epoch floor is repairing.
                self._queue.append(msg)
                continue
            out.append(self._forward(msg))
        self._persist("token-demoted")
        return out

    # ------------------------------------------------------------------
    # Durability hooks (driven by repro.persist; rejoin reconciliation by
    # repro.faults.recovery.  All mutators require ``options.recovery``).
    # ------------------------------------------------------------------

    @property
    def custody_pending(self) -> bool:
        """True while restored token custody awaits the fencing handshake."""

        return self._custody_pending

    def persisted_state(self) -> Dict[str, object]:
        """Full JSON-safe state for the durability journal.

        A strict superset of :meth:`snapshot`: the monitoring view plus
        the fields recovery needs verbatim — attachment epochs and the
        full queued/pending request messages (the snapshot reduces those
        to origin/mode pairs).  Keeping the snapshot embedded unreduced
        is what lets recovery cross-check the two layers.
        """

        from ..persist.codec import request_to_payload

        return {
            "snapshot": self.snapshot().to_payload(),
            "attach_seq": self._attach_seq,
            "child_seqs": sorted(
                [int(node), int(seq)]
                for node, seq in self._child_seqs.items()
            ),
            "queue": [request_to_payload(msg) for msg in self._queue],
            "pending": (
                request_to_payload(self._pending)
                if self._pending is not None
                else None
            ),
            "custody_pending": self._custody_pending,
            "fence_floor": self._fence_floor,
            "lease_fenced": self._lease_fenced,
        }

    def flight_state(self) -> Dict[str, object]:
        """Exact JSON-safe state for flight-recorder checkpoints.

        Unlike :meth:`persisted_state` (rejoin semantics: children turn
        provisional, the serial counter advances, recent grants drop)
        this captures and :meth:`restore_flight_state` restores the
        automaton *verbatim*, which is what lets a replayed checkpoint
        reproduce the next recorded one bit-for-bit.  Pure read.
        """

        from ..obs.flightrec import (
            _request_id_to_payload,
            message_to_payload,
        )

        return {
            "token": self._has_token,
            "parent": self._parent,
            "held": sorted(
                [str(mode), count]
                for mode, count in self._held.items()
                if count > 0
            ),
            "children": sorted(
                [int(node), str(mode)]
                for node, mode in self._children.items()
            ),
            "queue": [message_to_payload(msg) for msg in self._queue],
            "frozen": sorted(str(mode) for mode in self._frozen),
            "pending": (
                message_to_payload(self._pending)
                if self._pending is not None
                else None
            ),
            "attach_seq": self._attach_seq,
            "child_seqs": sorted(
                [int(node), int(seq)]
                for node, seq in self._child_seqs.items()
            ),
            "token_epoch": self._token_epoch,
            "recent_grants": [
                [_request_id_to_payload(rid), str(mode), int(seq)]
                for rid, (mode, seq) in self._recent_grants.items()
            ],
            "custody_pending": self._custody_pending,
            "provisional_children": sorted(self._provisional_children),
            "local_serial": self._local_serial,
            "fence_floor": self._fence_floor,
            "lease_fenced": self._lease_fenced,
            "departing": self._departing,
        }

    def restore_flight_state(self, state: Dict[str, object]) -> None:
        """Exact inverse of :meth:`flight_state` (replay only).

        No rejoin-side effects: no recovery guard, no provisional
        demotion, no global serial advancement, no journal writes.  The
        pending-request context is not part of protocol state and
        restores as ``None``.
        """

        from ..obs.flightrec import (
            _request_id_from_payload,
            message_from_payload,
        )

        self._has_token = bool(state.get("token", False))
        parent = state.get("parent")
        self._parent = None if parent is None else int(parent)
        self._held = {
            LockMode(str(mode)): int(count)
            for mode, count in state.get("held", ())
        }
        self._children = {
            int(node): LockMode(str(mode))
            for node, mode in state.get("children", ())
        }
        self._queue = [
            message_from_payload(payload)
            for payload in state.get("queue", ())
        ]
        self._frozen = frozenset(
            LockMode(str(mode)) for mode in state.get("frozen", ())
        )
        pending = state.get("pending")
        self._pending = (
            message_from_payload(pending) if pending is not None else None
        )
        self._pending_ctx = None
        self._attach_seq = int(state.get("attach_seq", 0))
        self._child_seqs = {
            int(node): int(seq) for node, seq in state.get("child_seqs", ())
        }
        self._token_epoch = int(state.get("token_epoch", 0))
        self._recent_grants = OrderedDict(
            (
                _request_id_from_payload(rid),
                (LockMode(str(mode)), int(seq)),
            )
            for rid, mode, seq in state.get("recent_grants", ())
        )
        self._custody_pending = bool(state.get("custody_pending", False))
        self._provisional_children = {
            int(node) for node in state.get("provisional_children", ())
        }
        self._local_serial = int(state.get("local_serial", 0))
        self._fence_floor = int(state.get("fence_floor", 0))
        self._lease_fenced = bool(state.get("lease_fenced", False))
        self._departing = bool(state.get("departing", False))

    def adopt_persisted(self, state: Dict[str, object]) -> None:
        """Replace this automaton's state with a persisted *state* payload.

        Called on a freshly booted automaton before any message flows.
        Restored children become *provisional* (see ``__init__``); the
        pending-request context is gone with the old process, so the
        caller must follow up with :meth:`abandon_pending`, and a restored
        token holder must go through :meth:`begin_custody_fence` before it
        may grant again.
        """

        self._require_recovery()
        self._flight_op("adopt_persisted", state=state)
        from ..persist.codec import request_from_payload
        from .messages import advance_serial_past

        snap = state["snapshot"]
        self._has_token = bool(snap["token"])
        parent = snap.get("parent")
        self._parent = None if parent is None else int(parent)
        self._held = {
            LockMode(str(mode)): int(count)
            for mode, count in snap.get("held", ())
            if int(count) > 0
        }
        self._children = {
            int(child): LockMode(str(mode))
            for child, mode in snap.get("children", ())
        }
        self._frozen = frozenset(
            LockMode(str(mode)) for mode in snap.get("frozen", ())
        )
        self._token_epoch = int(snap.get("token_epoch", 0))
        self._attach_seq = int(state.get("attach_seq", 0))
        self._child_seqs = {
            int(node): int(seq) for node, seq in state.get("child_seqs", ())
        }
        self._queue = [
            request_from_payload(payload) for payload in state.get("queue", ())
        ]
        pending = state.get("pending")
        self._pending = (
            request_from_payload(pending) if pending is not None else None
        )
        self._pending_ctx = None
        self._custody_pending = False
        self._fence_floor = int(state.get("fence_floor", 0))
        self._lease_fenced = bool(state.get("lease_fenced", False))
        self._recent_grants.clear()
        self._provisional_children = set(self._children)
        floor = max(
            self._attach_seq, max(self._child_seqs.values(), default=0)
        )
        for msg in self._queue:
            floor = max(floor, msg.request_id.serial)
        if self._pending is not None:
            floor = max(floor, self._pending.request_id.serial)
        advance_serial_past(floor)
        self._obs_queue()
        self._obs_copyset()
        self._obs_frozen()

    def begin_custody_fence(self) -> None:
        """Suspend granting until restored token custody is confirmed.

        A durably-restarted token holder may have been superseded by an
        epoch-fenced regeneration while it was down.  Until the rejoin
        probe settles, the automaton queues incoming requests instead of
        granting, so a later :meth:`fence_custody` can demote without ever
        having issued a grant under contested custody.
        """

        self._require_recovery()
        self._flight_op("begin_custody_fence")
        if not self._has_token:
            raise ProtocolError(
                "custody fencing applies only to a restored token holder"
            )
        self._custody_pending = True
        self._persist("custody-pending")

    def confirm_custody(self) -> List[Envelope]:
        """Custody settled in our favour: resume granting."""

        self._require_recovery()
        self._flight_op("confirm_custody")
        if not self._custody_pending:
            return []
        self._custody_pending = False
        out = self._expire_provisional()
        out.extend(self._check_queue())
        out.extend(self._refresh_frozen())
        self._persist("custody-confirmed")
        return out

    def fence_custody(self, epoch: int, holder: NodeId) -> List[Envelope]:
        """Custody lost: a token of *epoch* lives at *holder*; demote.

        The restored copyset is discarded wholesale (the new holder's
        view supersedes it), the owned mode is re-announced under the new
        parent, and queued foreign requests are re-forwarded.  Own-origin
        entries are dropped — their contexts died with the old process
        and :meth:`abandon_pending` already disowned them.
        """

        self._require_recovery()
        self._flight_op("fence_custody", epoch=int(epoch), holder=holder)
        if not self._custody_pending:
            return []
        self._custody_pending = False
        self._token_epoch = max(self._token_epoch, int(epoch))
        self._has_token = False
        self._parent = holder
        self._attach_seq = self._mint_serial()
        self._children.clear()
        self._child_seqs.clear()
        self._provisional_children.clear()
        self._recent_grants.clear()
        self._obs_copyset()
        out: List[Envelope] = []
        owned = self.owned_mode()
        if owned is not LockMode.NONE:
            out.append(self._release_to(holder, owned))
        queued, self._queue = self._queue, []
        if queued:
            self._obs_queue()
        for msg in queued:
            if msg.upgrade or msg.origin == self._node_id:
                continue
            out.append(self._forward(msg))
        self._persist("custody-fenced")
        return out

    def abandon_pending(self) -> List[Envelope]:
        """Disown the restored in-flight request (its waiter is gone).

        The application context that awaited the grant died with the old
        process, so serving the request would grant a mode nobody ever
        releases.  Foreign requests queued *behind* the abandoned one at a
        non-token node are re-forwarded — they were only parked here
        because of it (Rule 4.1).
        """

        self._require_recovery()
        self._flight_op("abandon_pending")
        had_pending = self._pending is not None
        self._pending = None
        self._pending_ctx = None
        before = len(self._queue)
        self._queue = [q for q in self._queue if q.origin != self._node_id]
        dropped = before - len(self._queue)
        if not had_pending and not dropped:
            return []
        if dropped:
            self._obs_queue()
        out: List[Envelope] = []
        if not self._has_token and self._parent is not None and self._queue:
            queued, self._queue = self._queue, []
            self._obs_queue()
            for msg in queued:
                out.append(self._forward(msg))
        self._persist("pending-abandoned")
        return out

    def reassert_owned(self) -> List[Envelope]:
        """Announce the current owned mode to the parent.

        Used in both directions of a durable restart: a restored child
        re-asserts its subtree to its parent, and live children of a
        restarted parent re-assert theirs so the parent's restored
        (provisional) copyset entries are re-confirmed or corrected.
        """

        self._require_recovery()
        self._flight_op("reassert_owned")
        if self._has_token or self._parent is None:
            return []
        return [self._release_to(self._parent, self.owned_mode())]

    def expire_provisional_children(self) -> List[Envelope]:
        """Drop restored copyset entries never re-confirmed by the child.

        Provisional entries kept past the rejoin settle window belong to
        children that migrated (or released) while this node was down;
        keeping them would pin the owned mode forever.  Expiry mirrors
        :meth:`evict_child`: the owned mode may weaken, which can unblock
        the queue or emit a release upward.
        """

        self._require_recovery()
        self._flight_op("expire_provisional_children")
        return self._expire_provisional()

    def begin_departure(self) -> List[Envelope]:
        """Enter graceful-departure mode (see :mod:`repro.membership`).

        From here on this automaton refuses new local requests, issues no
        copy grants and (if it holds the token) grants nothing from the
        queue — it becomes a pure forwarder while the membership layer
        hands off token custody and migrates its copyset children.
        Idempotent.
        """

        self._require_recovery()
        self._flight_op("begin_departure")
        self._departing = True
        return []

    def adopt_child(
        self, node: NodeId, mode: LockMode, seq: int = 0
    ) -> List[Envelope]:
        """Record *node* as a copyset child holding *mode* (migration).

        Used by graceful departure: before a departing parent points a
        child at us, it tells us to adopt the child's recorded owned mode
        under its current attachment epoch *seq*.  Recording the mode
        *before* the child detaches from the leaver means the child's
        subtree is always accounted for somewhere — the record here
        over-approximates until the child's own announce confirms it,
        which blocks conflicting grants but can never violate Rule 1.
        Merging is strengthen-only and idempotent, so re-sent migration
        messages are harmless.
        """

        self._require_recovery()
        self._flight_op("adopt_child", node=node, mode=str(mode), seq=seq)
        if (
            node == self._node_id
            or node == self._parent
            or mode is LockMode.NONE
        ):
            return []
        owned_before = self.owned_mode()
        recorded = self._children.get(node, LockMode.NONE)
        self._children[node] = max_mode((recorded, mode))
        if seq > self._child_seqs.get(node, 0):
            self._child_seqs[node] = seq
        self._obs_copyset()
        self._persist("child-adopted")
        out = self._after_owned_maybe_changed(owned_before)
        out.extend(self._refresh_frozen())
        return out

    # ------------------------------------------------------------------
    # God-view membership splices (see repro.sim.cluster).
    # ------------------------------------------------------------------
    #
    # The fault-free clusters support online join/leave by editing the
    # copyset tree directly at quiescence instead of running the
    # repro.faults handoff protocol.  These helpers are the sanctioned
    # mutators for that: they keep the derived bits (attachment epochs,
    # child seqs, provisional sets) consistent and — apart from the
    # Rule-5.2 release a weakened parent owes upward — never touch the
    # wire.  Callers must guarantee quiescence; none of these check it.

    def splice_adopt_child(self, node: NodeId, mode: LockMode, seq: int) -> None:
        """Record a migrated child directly (strengthen-only merge)."""

        self._flight_op("splice_adopt_child", node=node, mode=str(mode), seq=seq)
        if node == self._node_id or mode is LockMode.NONE:
            return
        recorded = self._children.get(node, LockMode.NONE)
        self._children[node] = max_mode((recorded, mode))
        if seq > self._child_seqs.get(node, 0):
            self._child_seqs[node] = seq
        self._obs_copyset()
        self._persist("splice")

    def splice_drop_child(self, node: NodeId) -> List[Envelope]:
        """Forget a departed child; may owe a weakened release upward."""

        self._flight_op("splice_drop_child", node=node)
        owned_before = self.owned_mode()
        self._children.pop(node, None)
        self._child_seqs.pop(node, None)
        self._provisional_children.discard(node)
        self._queue = [q for q in self._queue if q.origin != node]
        self._obs_copyset()
        self._persist("splice")
        out = self._after_owned_maybe_changed(owned_before)
        out.extend(self._refresh_frozen())
        return out

    def splice_parent(self, new_parent: NodeId) -> None:
        """Re-point the parent edge after the old parent was spliced out."""

        self._flight_op("splice_parent", parent=new_parent)
        if self._has_token or new_parent == self._node_id:
            return
        self._parent = new_parent
        self._attach_seq = self._mint_serial()
        self._evict_new_parent(new_parent)
        self._persist("splice")

    def splice_token(self, frozen: Optional[FrozenSet[LockMode]] = None) -> None:
        """Become the token root, inheriting the leaver's frozen set."""

        self._flight_op("splice_token")
        self._has_token = True
        self._parent = None
        self._attach_seq = self._mint_serial()
        self._custody_pending = False
        if frozen is not None:
            self._frozen = frozenset(frozen)
        self._persist("splice")

    def splice_retire(self, forwarder: NodeId) -> None:
        """Terminal state of a spliced-out node: empty, pointing away.

        The ghost keeps a parent edge at *forwarder* so any stray message
        that still reaches it is forwarded instead of mis-handled; it
        claims no token, no children and no queue.
        """

        self._flight_op("splice_retire", forwarder=forwarder)
        self._has_token = False
        self._children.clear()
        self._child_seqs.clear()
        self._provisional_children.clear()
        self._queue = []
        self._pending = None
        self._pending_ctx = None
        if forwarder != self._node_id:
            self._parent = forwarder
            self._attach_seq = self._mint_serial()
        self._persist("splice")

    def _expire_provisional(self) -> List[Envelope]:
        stale = sorted(
            node for node in self._provisional_children if node in self._children
        )
        self._provisional_children.clear()
        if not stale:
            return []
        owned_before = self.owned_mode()
        for node in stale:
            self._children.pop(node, None)
            self._child_seqs.pop(node, None)
        self._obs_copyset()
        self._persist("children-expired")
        out = self._after_owned_maybe_changed(owned_before)
        out.extend(self._refresh_frozen())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HierarchicalLockAutomaton node={self._node_id} "
            f"lock={self._lock_id!r} token={self._has_token} "
            f"owned={self.owned_mode()} held={self.held_modes} "
            f"pending={self.pending_mode} queue={len(self._queue)} "
            f"frozen={sorted(str(m) for m in self._frozen)}>"
        )

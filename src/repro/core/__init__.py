"""The paper's primary contribution: hierarchical locking protocol.

Public surface:

* :class:`~repro.core.modes.LockMode` and the rule tables
  (:mod:`repro.core.modes`),
* :class:`~repro.core.automaton.HierarchicalLockAutomaton` — the protocol
  state machine,
* :class:`~repro.core.lockspace.LockSpace` — per-node multiplexer,
* :mod:`repro.core.hierarchy` — multi-granularity lock plans,
* the protocol messages (:mod:`repro.core.messages`).
"""

from .automaton import HierarchicalLockAutomaton
from .clock import LamportClock
from .hierarchy import ResourceTree, ancestors, lock_plan, release_plan
from .lockspace import LockSpace, default_token_home, hashed_token_home
from .messages import (
    Envelope,
    FreezeMessage,
    GrantMessage,
    LockId,
    Message,
    NodeId,
    ReleaseMessage,
    RequestId,
    RequestMessage,
    TokenMessage,
    message_type_label,
)
from .modes import (
    ALL_MODES,
    LockMode,
    REAL_MODES,
    child_can_grant,
    compatible,
    conflicts,
    freeze_set,
    intention_mode,
    max_mode,
    should_queue,
    strength,
    token_can_grant,
    token_transfer_required,
)

__all__ = [
    "ALL_MODES",
    "Envelope",
    "FreezeMessage",
    "GrantMessage",
    "HierarchicalLockAutomaton",
    "LamportClock",
    "LockId",
    "LockMode",
    "LockSpace",
    "Message",
    "NodeId",
    "REAL_MODES",
    "ReleaseMessage",
    "RequestId",
    "RequestMessage",
    "ResourceTree",
    "TokenMessage",
    "ancestors",
    "child_can_grant",
    "compatible",
    "conflicts",
    "default_token_home",
    "freeze_set",
    "hashed_token_home",
    "intention_mode",
    "lock_plan",
    "max_mode",
    "message_type_label",
    "release_plan",
    "should_queue",
    "strength",
    "token_can_grant",
    "token_transfer_required",
]

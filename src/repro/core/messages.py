"""Wire-format messages of the hierarchical locking protocol.

The protocol uses five message types, matching the breakdown reported in
the paper's Figure 7:

* ``RequestMessage`` — a lock request travelling up the copyset tree,
* ``GrantMessage`` — a granted copy (Rule 3, case "copy grant"),
* ``TokenMessage`` — a token transfer (Rule 3, case "transfer token"),
* ``ReleaseMessage`` — an owned-mode change propagating to a parent,
* ``FreezeMessage`` — the token's current frozen-mode set propagating down
  the copyset tree (Rule 6).

Messages are immutable dataclasses.  Each message names the lock it is
about so that a single transport channel can multiplex every lock in the
system (see :mod:`repro.core.lockspace`).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import FrozenSet, Optional, Tuple

from .modes import LockMode

#: Type alias for node identifiers.
NodeId = int

#: Type alias for lock identifiers (hierarchical path strings).
LockId = str

_request_serial = itertools.count()


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """Causal-tracing context riding piggyback on a protocol message.

    Minted by the transport layer when a request first crosses the wire
    and re-stamped (same ``trace_id``, fresh ``hop``, ``parent`` pointing
    at the causally preceding hop) on every subsequent message of the
    same causal chain.  Between the automaton that builds a reply and the
    transport that sends it, the field holds the *triggering* message's
    context — a parent hint the transport resolves into a fresh hop — so
    the automata only ever copy the field and never talk to the tracer.

    ``kind`` annotates non-primary hops: ``"send"`` for ordinary ones,
    ``"retransmit"`` for session-channel or application-level re-sends,
    ``"regen"`` for messages born from an epoch-fenced token
    regeneration.  See docs/TRACING.md for the full hop model.
    """

    trace_id: str
    hop: int
    parent: int
    origin: NodeId
    kind: str = "send"


@dataclasses.dataclass(frozen=True)
class Message:
    """Base class for all protocol messages."""

    lock_id: LockId
    sender: NodeId
    #: Optional causal-tracing context (see :class:`TraceContext`).  Kept
    #: out of equality/repr so tracing never changes protocol semantics:
    #: two messages that differ only in trace context still compare equal
    #: (dedup, queues) and render identically in logs.
    trace: Optional[TraceContext] = dataclasses.field(
        default=None, kw_only=True, compare=False, repr=False
    )


@dataclasses.dataclass(frozen=True)
class RequestId:
    """Globally unique, totally ordered identity of one lock request.

    Ordering is by Lamport ``timestamp`` first (the FIFO order the protocol
    preserves, following the paper's citation [11]), with the origin node
    and an origin-local serial number as deterministic tie-breakers.
    """

    timestamp: int
    origin: NodeId
    serial: int

    def sort_key(self) -> Tuple[int, int, int]:
        """Return the total-order key used for FIFO queue merges."""

        return (self.timestamp, self.origin, self.serial)


@dataclasses.dataclass(frozen=True)
class RequestMessage(Message):
    """A lock request for ``mode`` on behalf of ``origin``.

    ``sender`` is the immediate forwarder (changes hop by hop), ``origin``
    is the node that wants the lock.  ``upgrade`` marks a Rule 7 U→W
    conversion request; such requests never leave their origin node (the
    upgrader always holds the token, see DESIGN.md) but share the queue
    entry representation.
    """

    origin: NodeId
    mode: LockMode
    request_id: RequestId
    upgrade: bool = False
    #: Arbitration priority (higher first) when the hosting automaton runs
    #: with ``ProtocolOptions.priority_scheduling``; ignored otherwise.
    priority: int = 0
    #: Fencing token the issuing session presents (see :mod:`repro.leases`).
    #: ``0`` means unfenced (the fault-free protocol); a positive token at
    #: or below the receiving automaton's fence floor marks the request as
    #: coming from a holder whose lease was revoked — it is dropped.
    fencing_token: int = 0


@dataclasses.dataclass(frozen=True)
class GrantMessage(Message):
    """A granted copy of the lock in ``mode`` for request ``request_id``.

    The receiver becomes a child of ``sender`` in the copyset tree.  The
    granter's current frozen-mode set is piggybacked so the new child never
    grants a frozen mode.

    ``attachment_seq`` identifies this parent/child attachment epoch.  It
    is minted from the global serial counter **at grant-issue time** (not
    the request's creation time), so epochs are ordered exactly as the
    attachment-establishing events really happened.  Release messages echo
    the child's latest processed epoch, letting the parent discard any
    release that was already in flight when the grant was issued — without
    this, a stale ``Release(NONE)`` arriving just after a re-grant (or
    crossing the grant on the wire) silently under-counts the child's
    subtree and breaks the owned-mode dominance invariant.
    """

    mode: LockMode
    request_id: RequestId
    frozen: FrozenSet[LockMode] = frozenset()
    attachment_seq: int = 0


@dataclasses.dataclass(frozen=True)
class TokenMessage(Message):
    """The token moving to the requester of ``granted_mode``.

    Carries the old token node's local FIFO queue (Fig. 4 note c), its
    remaining owned mode (note b: the old owner becomes a child of the new
    token node iff it still owns a mode) and the current frozen set.
    """

    granted_mode: LockMode
    request_id: RequestId
    prev_owner_mode: LockMode
    queue: Tuple[RequestMessage, ...] = ()
    frozen: FrozenSet[LockMode] = frozenset()
    #: Attachment epoch of the old token's new role as the receiver's
    #: child (a freshly minted serial; see GrantMessage.attachment_seq).
    prev_owner_seq: int = 0
    #: Token incarnation number.  0 for the original token; bumped each
    #: time the recovery layer regenerates a token presumed lost with a
    #: crashed node (see docs/FAULTS.md).  Receivers discard tokens whose
    #: epoch is below their observed floor, which is what makes a stale
    #: token resurfacing after a regeneration harmless.
    epoch: int = 0


@dataclasses.dataclass(frozen=True)
class ReleaseMessage(Message):
    """The sender's owned mode on this lock changed to ``new_mode``.

    ``new_mode == LockMode.NONE`` detaches the sender from the receiver's
    copyset entirely (Rule 5.2).  ``attachment_seq`` echoes the epoch of
    the attachment this release refers to; the receiver ignores releases
    older than its current record for the sender (see GrantMessage).
    """

    new_mode: LockMode
    attachment_seq: int = 0


def fresh_attachment_seq() -> int:
    """Mint a fresh attachment epoch (shares the request serial space)."""

    return next(_request_serial)


def advance_serial_past(floor: int) -> None:
    """Ensure future serials/attachment epochs exceed *floor*.

    Durable recovery restores attachment epochs persisted by an earlier
    process incarnation; after a real process restart the counter would
    start back at zero and mint epochs *below* the restored ones, which
    would make fresh attachments look stale.  Burning serials up to the
    restored high-water mark keeps the space monotonic.
    """

    if floor < 0:
        return
    while next(_request_serial) <= floor:
        pass
    # The loop consumed one serial beyond the floor; that gap is harmless
    # (serials only need to be unique and monotonic, not dense).


@dataclasses.dataclass(frozen=True)
class FreezeMessage(Message):
    """The absolute frozen-mode set currently in force (Rule 6).

    Sent down the copyset tree to (transitive) potential granters whenever
    the effective frozen set changes; a shrinking set doubles as the
    unfreeze notification (see DESIGN.md §3).
    """

    frozen: FrozenSet[LockMode]


@dataclasses.dataclass(frozen=True)
class Envelope:
    """A routed message: deliver ``message`` to node ``dest``."""

    dest: NodeId
    message: Message


def fresh_request_id(timestamp: int, origin: NodeId) -> RequestId:
    """Mint a new :class:`RequestId` with a process-unique serial."""

    return RequestId(timestamp=timestamp, origin=origin, serial=next(_request_serial))


#: Message-type labels used by the metrics collector (Figure 7 legend).
MESSAGE_TYPE_LABELS = {
    RequestMessage: "request",
    GrantMessage: "grant",
    TokenMessage: "token",
    ReleaseMessage: "release",
    FreezeMessage: "freeze",
}


def message_type_label(message: Message) -> str:
    """Return the Figure-7 label for *message* (e.g. ``"grant"``)."""

    return MESSAGE_TYPE_LABELS[type(message)]

"""Hierarchical resource naming and multi-granularity lock plans.

The paper's evaluation locks a two-level hierarchy (a table and its
entries); the CORBA concurrency-service model allows arbitrary depth
(database → table → entry → attribute …).  This module provides:

* a canonical path naming scheme for hierarchical resources
  (``"db/tickets"``, ``"db/tickets/17"``),
* :func:`lock_plan` — the ordered list of ``(lock_id, mode)`` pairs a
  client must acquire to access a resource at some granularity, taking the
  appropriate intention locks on every ancestor (Gray et al. multi-
  granularity locking, the paper's Section 3.1 example),
* :class:`ResourceTree` — an explicit tree of resources for applications
  that want to enumerate granularities.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from .messages import LockId
from .modes import LockMode, intention_mode

#: Separator for hierarchical resource paths.
PATH_SEPARATOR = "/"


def ancestors(lock_id: LockId) -> List[LockId]:
    """Return the proper ancestors of *lock_id*, outermost first.

    >>> ancestors("db/tickets/17")
    ['db', 'db/tickets']
    """

    parts = lock_id.split(PATH_SEPARATOR)
    return [
        PATH_SEPARATOR.join(parts[: i + 1]) for i in range(len(parts) - 1)
    ]


def lock_plan(lock_id: LockId, mode: LockMode) -> List[Tuple[LockId, LockMode]]:
    """Return the acquisition plan for accessing *lock_id* in *mode*.

    Ancestors are taken in the corresponding intention mode, outermost
    first, and the target resource is taken in *mode* last — the standard
    multi-granularity discipline that makes lock acquisition deadlock-free
    across granularities.

    >>> lock_plan("db/tickets/17", LockMode.R)
    [('db', LockMode.IR), ('db/tickets', LockMode.IR), ('db/tickets/17', LockMode.R)]
    """

    if mode is LockMode.NONE:
        raise ConfigurationError("cannot plan an acquisition of the empty mode")
    intent = intention_mode(mode)
    plan = [(ancestor, intent) for ancestor in ancestors(lock_id)]
    plan.append((lock_id, mode))
    return plan


def release_plan(lock_id: LockId, mode: LockMode) -> List[Tuple[LockId, LockMode]]:
    """Return the release order for a prior :func:`lock_plan` acquisition.

    Releases run innermost-first (the reverse of acquisition), so an
    intention lock is never dropped while a descendant is still held.
    """

    return list(reversed(lock_plan(lock_id, mode)))


@dataclasses.dataclass
class Resource:
    """A node in a :class:`ResourceTree`."""

    lock_id: LockId
    children: Dict[str, "Resource"] = dataclasses.field(default_factory=dict)

    @property
    def name(self) -> str:
        """The final path component of this resource."""

        return self.lock_id.rsplit(PATH_SEPARATOR, 1)[-1]


class ResourceTree:
    """An explicit hierarchy of lockable resources.

    Mostly a convenience for applications and examples: the protocol only
    ever sees flat lock ids, but building the tree up front documents the
    granularities and lets workloads enumerate leaves.
    """

    def __init__(self, root_name: str = "db") -> None:
        if PATH_SEPARATOR in root_name:
            raise ConfigurationError("root name must be a single component")
        self._root = Resource(lock_id=root_name)
        self._index: Dict[LockId, Resource] = {root_name: self._root}

    @property
    def root(self) -> Resource:
        """The root resource (e.g. the database)."""

        return self._root

    def add(self, parent_id: LockId, name: str) -> Resource:
        """Add a child resource *name* under *parent_id* and return it."""

        if PATH_SEPARATOR in name:
            raise ConfigurationError("child name must be a single component")
        parent = self._index.get(parent_id)
        if parent is None:
            raise ConfigurationError(f"unknown parent resource {parent_id!r}")
        lock_id = parent_id + PATH_SEPARATOR + name
        if lock_id in self._index:
            raise ConfigurationError(f"resource {lock_id!r} already exists")
        resource = Resource(lock_id=lock_id)
        parent.children[name] = resource
        self._index[lock_id] = resource
        return resource

    def add_table(self, name: str, entries: int) -> List[Resource]:
        """Add a table with *entries* numbered rows; return the rows.

        This is the paper's evaluation shape: one lock for the table, one
        lock per entry.
        """

        table = self.add(self._root.lock_id, name)
        return [self.add(table.lock_id, str(i)) for i in range(entries)]

    def get(self, lock_id: LockId) -> Optional[Resource]:
        """Look up a resource by id (``None`` if absent)."""

        return self._index.get(lock_id)

    def leaves(self) -> List[Resource]:
        """Return every leaf resource, in insertion order."""

        return [r for r in self._index.values() if not r.children]

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._index.values())

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, lock_id: LockId) -> bool:
        return lock_id in self._index

"""Per-node multiplexer for many named locks.

A distributed system shares many lock objects (in the paper's evaluation:
one lock per table entry plus one for the whole table).  Each node hosts a
:class:`LockSpace` that owns one :class:`HierarchicalLockAutomaton` per
lock, a single shared Lamport clock, and routes incoming messages to the
right automaton by ``lock_id``.

Lock automata are created lazily and deterministically: for every lock,
node ``token_home(lock_id)`` starts as the token node and every other node
starts with its parent pointing straight at it (a star, the paper's
"initially the root is the token owner" configuration).  The token home
placement is configurable so experiments can co-locate or spread locks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from ..errors import ConfigurationError
from .automaton import (
    FULL_PROTOCOL,
    GrantListener,
    HierarchicalLockAutomaton,
    ProtocolOptions,
    _noop_listener,
)
from .clock import LamportClock
from .messages import Envelope, LockId, Message, NodeId
from .modes import LockMode

#: Maps a lock id to the node that initially holds its token.
TokenHomeFn = Callable[[LockId], NodeId]


def default_token_home(lock_id: LockId) -> NodeId:
    """Default placement: every token starts at node 0."""

    return 0


def hashed_token_home(num_nodes: int) -> TokenHomeFn:
    """Placement that spreads initial tokens across nodes by lock name.

    Uses a deterministic (non-salted) string hash so that runs are
    reproducible across processes.
    """

    if num_nodes <= 0:
        raise ConfigurationError("num_nodes must be positive")

    def _home(lock_id: LockId) -> NodeId:
        digest = 0
        for char in lock_id:
            digest = (digest * 131 + ord(char)) % 1_000_000_007
        return digest % num_nodes

    return _home


class LockSpace:
    """All hierarchical-lock automata hosted by one node.

    Parameters
    ----------
    node_id:
        This node's identity.
    token_home:
        Function from lock id to the node initially holding that lock's
        token.
    listener:
        Grant listener shared by every automaton of this node.
    """

    def __init__(
        self,
        node_id: NodeId,
        token_home: TokenHomeFn = default_token_home,
        listener: GrantListener = _noop_listener,
        options: ProtocolOptions = FULL_PROTOCOL,
    ) -> None:
        self._node_id = node_id
        self._token_home = token_home
        self._listener = listener
        self._options = options
        self._clock = LamportClock()
        self._automata: Dict[LockId, HierarchicalLockAutomaton] = {}
        #: Optional observability sink propagated to every automaton this
        #: space creates (set before first use; None = zero-cost no-op).
        self.obs = None
        #: Optional durability journal, propagated the same way (see
        #: :class:`repro.persist.NodeJournal`).
        self.persist = None
        #: Optional flight recorder, propagated the same way (see
        #: :class:`repro.obs.flightrec.FlightRecorder`).
        self.flightrec = None

    @property
    def node_id(self) -> NodeId:
        """This node's identity."""

        return self._node_id

    @property
    def clock(self) -> LamportClock:
        """The node's shared Lamport clock."""

        return self._clock

    @property
    def lock_ids(self) -> List[LockId]:
        """Ids of every lock this node has touched so far."""

        return list(self._automata)

    def automaton(self, lock_id: LockId) -> HierarchicalLockAutomaton:
        """Return (creating on first use) the automaton for *lock_id*."""

        existing = self._automata.get(lock_id)
        if existing is not None:
            return existing
        home = self._token_home(lock_id)
        automaton = HierarchicalLockAutomaton(
            node_id=self._node_id,
            lock_id=lock_id,
            clock=self._clock,
            parent=None if home == self._node_id else home,
            has_token=home == self._node_id,
            listener=self._listener,
            options=self._options,
        )
        automaton.obs = self.obs
        automaton.persist = self.persist
        automaton.flightrec = self.flightrec
        if self.flightrec is not None:
            # Birth precedes insertion: a checkpoint due on the next
            # event must not include the not-yet-born lock.
            self.flightrec.record_birth(
                lock_id,
                {
                    "parent": automaton.parent,
                    "token": automaton.has_token,
                },
            )
        self._automata[lock_id] = automaton
        return automaton

    # ------------------------------------------------------------------
    # Application API (thin pass-throughs keyed by lock id).
    # ------------------------------------------------------------------

    def request(
        self,
        lock_id: LockId,
        mode: LockMode,
        ctx: object = None,
        priority: int = 0,
    ) -> List[Envelope]:
        """Request *lock_id* in *mode*; returns messages to transmit."""

        return self.automaton(lock_id).request(mode, ctx, priority)

    def release(self, lock_id: LockId, mode: LockMode) -> List[Envelope]:
        """Release one hold of *mode* on *lock_id*."""

        return self.automaton(lock_id).release(mode)

    def upgrade(self, lock_id: LockId, ctx: object = None) -> List[Envelope]:
        """Upgrade a held ``U`` lock on *lock_id* to ``W``."""

        return self.automaton(lock_id).upgrade(ctx)

    def handle(self, message: Message) -> List[Envelope]:
        """Route an incoming message to the automaton it concerns."""

        return self.automaton(message.lock_id).handle(message)

    def flight_state(self):
        """Whole-node state for flight-recorder checkpoints (pure read)."""

        return {
            "clock": self._clock.time,
            "locks": [
                [lock_id, self._automata[lock_id].flight_state()]
                for lock_id in sorted(self._automata, key=str)
            ],
        }

    def automata(self) -> Iterable[HierarchicalLockAutomaton]:
        """Iterate over every instantiated automaton (for monitors)."""

        return self._automata.values()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LockSpace node={self._node_id} locks={len(self._automata)}>"

"""Workload generation: the multi-airline reservation application."""

from .airline import (
    GLOBAL_LOCK_ID,
    hierarchical_client,
    naimi_pure_client,
    naimi_same_work_client,
)
from .generator import (
    draw_operation,
    draw_operations,
    entry_lock_id,
    table_lock_id,
)
from .spec import PAPER_MODE_MIX, Operation, WorkloadSpec

__all__ = [
    "GLOBAL_LOCK_ID",
    "Operation",
    "PAPER_MODE_MIX",
    "WorkloadSpec",
    "draw_operation",
    "draw_operations",
    "entry_lock_id",
    "hierarchical_client",
    "naimi_pure_client",
    "naimi_same_work_client",
    "table_lock_id",
]

"""The multi-airline reservation application, in three protocol flavours.

Each node runs one client process that iterates: idle, draw an operation,
acquire the locks the operation needs, hold them for the critical-section
time, release, repeat — the driver of every performance figure in the
paper (Section 4).

The three flavours implement the paper's three curves:

* :func:`hierarchical_client` — our protocol: entry accesses take the
  table lock in the intention mode plus the entry lock in the requested
  mode; table accesses take the single table lock; ``U`` draws exercise
  the Rule 7 upgrade.
* :func:`naimi_same_work_client` — Naimi *same work*: entry accesses take
  that entry's token; table accesses take **every** entry token one by
  one, in ascending order (deadlock avoidance by global ordering).
* :func:`naimi_pure_client` — Naimi *pure*: a single global token, one
  acquisition per operation (the original Naimi et al. setting).

Metric conventions (DESIGN.md §6): each acquisition issued through a
protocol's native API is one *lock request* — for our protocol an entry
access issues two (intent + leaf) and an upgrade issues one more; for
same-work the emulated hierarchical operation counts as one request
whose latency spans the whole ordered multi-acquisition.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from ..core.modes import LockMode, intention_mode
from ..metrics import MetricsCollector
from ..sim.cluster import HierClient, NaimiClient
from ..sim.engine import SimEvent, Simulator, Timeout
from ..sim.rng import Distribution, Exponential
from .generator import draw_operation, entry_lock_id, table_lock_id
from .spec import Operation, WorkloadSpec

#: Lock id used by the Naimi *pure* configuration.
GLOBAL_LOCK_ID = "global"


def _acquire_and_record(
    sim: Simulator,
    metrics: Optional[MetricsCollector],
    node_id: int,
    kind: str,
    event_factory,
    lock: str = "",
) -> Generator[SimEvent, object, None]:
    """Wait for one acquisition, recording its latency under *kind*."""

    issued_at = sim.now
    yield event_factory()
    if metrics is not None:
        metrics.record_request(node_id, kind, issued_at, sim.now, lock=lock)


def hierarchical_client(
    sim: Simulator,
    client: HierClient,
    spec: WorkloadSpec,
    num_entries: int,
    rng: random.Random,
    metrics: Optional[MetricsCollector] = None,
    cs_dist: Optional[Distribution] = None,
    idle_dist: Optional[Distribution] = None,
    table: str = "db/tickets",
) -> Generator[SimEvent, object, None]:
    """One node's client loop under the hierarchical protocol."""

    cs = cs_dist if cs_dist is not None else Exponential(spec.cs_mean)
    idle = idle_dist if idle_dist is not None else Exponential(spec.idle_mean)
    node_id = client.node_id
    table_lock = table_lock_id(table)
    for _ in range(spec.ops_per_node):
        yield Timeout(sim, idle.sample(rng))
        op = draw_operation(rng, spec, node_id, num_entries)
        if op.is_entry_op:
            intent = intention_mode(op.mode)
            leaf = LockMode.R if op.mode is LockMode.IR else LockMode.W
            entry_lock = entry_lock_id(op.entry, table)
            yield from _acquire_and_record(
                sim, metrics, node_id, str(intent),
                lambda: client.acquire(table_lock, intent),
                lock=table_lock,
            )
            yield from _acquire_and_record(
                sim, metrics, node_id, str(leaf),
                lambda: client.acquire(entry_lock, leaf),
                lock=entry_lock,
            )
            yield Timeout(sim, cs.sample(rng))
            client.release(entry_lock, leaf)
            client.release(table_lock, intent)
        elif op.mode is LockMode.U:
            yield from _acquire_and_record(
                sim, metrics, node_id, "U",
                lambda: client.acquire(table_lock, LockMode.U),
                lock=table_lock,
            )
            yield Timeout(sim, cs.sample(rng))  # the read phase
            yield from _acquire_and_record(
                sim, metrics, node_id, "U->W",
                lambda: client.upgrade(table_lock),
                lock=table_lock,
            )
            yield Timeout(sim, cs.sample(rng))  # the write phase
            client.release(table_lock, LockMode.W)
        else:
            yield from _acquire_and_record(
                sim, metrics, node_id, str(op.mode),
                lambda: client.acquire(table_lock, op.mode),
                lock=table_lock,
            )
            yield Timeout(sim, cs.sample(rng))
            client.release(table_lock, op.mode)
        if metrics is not None:
            metrics.record_operation()


def naimi_same_work_client(
    sim: Simulator,
    client: NaimiClient,
    spec: WorkloadSpec,
    num_entries: int,
    rng: random.Random,
    metrics: Optional[MetricsCollector] = None,
    cs_dist: Optional[Distribution] = None,
    idle_dist: Optional[Distribution] = None,
    table: str = "db/tickets",
) -> Generator[SimEvent, object, None]:
    """One node's client loop under Naimi *same work*."""

    cs = cs_dist if cs_dist is not None else Exponential(spec.cs_mean)
    idle = idle_dist if idle_dist is not None else Exponential(spec.idle_mean)
    node_id = client.node_id
    for _ in range(spec.ops_per_node):
        yield Timeout(sim, idle.sample(rng))
        op = draw_operation(rng, spec, node_id, num_entries)
        if op.is_entry_op:
            entry_lock = entry_lock_id(op.entry, table)
            yield from _acquire_and_record(
                sim, metrics, node_id, "entry",
                lambda: client.acquire(entry_lock),
                lock=entry_lock,
            )
            yield Timeout(sim, cs.sample(rng))
            client.release(entry_lock)
        else:
            # Whole-table access: take every entry token, in order.
            issued_at = sim.now
            held: List[str] = []
            for index in range(num_entries):
                entry_lock = entry_lock_id(index, table)
                yield client.acquire(entry_lock)
                held.append(entry_lock)
            if metrics is not None:
                metrics.record_request(
                    node_id, "table", issued_at, sim.now, lock=table
                )
            yield Timeout(sim, cs.sample(rng))
            for entry_lock in reversed(held):
                client.release(entry_lock)
        if metrics is not None:
            metrics.record_operation()


def naimi_pure_client(
    sim: Simulator,
    client: NaimiClient,
    spec: WorkloadSpec,
    num_entries: int,
    rng: random.Random,
    metrics: Optional[MetricsCollector] = None,
    cs_dist: Optional[Distribution] = None,
    idle_dist: Optional[Distribution] = None,
    table: str = "db/tickets",
) -> Generator[SimEvent, object, None]:
    """One node's client loop under Naimi *pure* (single global token)."""

    cs = cs_dist if cs_dist is not None else Exponential(spec.cs_mean)
    idle = idle_dist if idle_dist is not None else Exponential(spec.idle_mean)
    node_id = client.node_id
    for _ in range(spec.ops_per_node):
        yield Timeout(sim, idle.sample(rng))
        yield from _acquire_and_record(
            sim, metrics, node_id, "pure",
            lambda: client.acquire(GLOBAL_LOCK_ID),
            lock=GLOBAL_LOCK_ID,
        )
        yield Timeout(sim, cs.sample(rng))
        client.release(GLOBAL_LOCK_ID)
        if metrics is not None:
            metrics.record_operation()

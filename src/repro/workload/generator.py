"""Operation-stream generation for the airline workload.

Each node draws an i.i.d. stream of operations from the spec's mode mix.
Entry targets follow a locality model: with probability ``spec.locality``
an entry-level access touches the node's *home* entry (its own airline's
fares), otherwise a uniformly random entry — reservation traffic is
read-mostly and self-biased, and the protocol's copyset/token placement
exploits exactly that.
"""

from __future__ import annotations

import random
from typing import List

from ..core.modes import LockMode
from ..sim.rng import weighted_choice
from .spec import Operation, WorkloadSpec


def draw_operation(
    rng: random.Random,
    spec: WorkloadSpec,
    node_id: int,
    num_entries: int,
) -> Operation:
    """Draw one operation for *node_id* per the spec's mode mix."""

    mode = weighted_choice(rng, list(spec.mode_mix))
    if mode in (LockMode.IR, LockMode.IW):
        if rng.random() < spec.locality:
            entry = node_id % num_entries
        else:
            entry = rng.randrange(num_entries)
        return Operation(mode=mode, entry=entry)
    return Operation(mode=mode, entry=None)


def draw_operations(
    rng: random.Random,
    spec: WorkloadSpec,
    node_id: int,
    num_entries: int,
    count: int,
) -> List[Operation]:
    """Draw *count* operations (used by tests and trace tooling)."""

    return [
        draw_operation(rng, spec, node_id, num_entries) for _ in range(count)
    ]


def table_lock_id(table: str = "db/tickets") -> str:
    """Canonical lock id of the whole-table lock."""

    return table


def entry_lock_id(index: int, table: str = "db/tickets") -> str:
    """Canonical lock id of table entry *index*."""

    return f"{table}/{index}"

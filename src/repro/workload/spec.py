"""Workload specification: the paper's evaluation parameters.

Section 4 of the paper fixes the knobs reproduced here as defaults:

* critical-section length: randomized, mean **15 ms**,
* inter-request idle time: randomized, mean **150 ms**,
* network latency: randomized, mean **150 ms**,
* request-mode mix: **IR 80 %, R 10 %, U 4 %, IW 5 %, W 1 %**
  ("reads dominate writes"),
* one lock per table entry plus one lock for the whole table,
* the number of table entries defaults to the number of nodes (the
  substitution argued in DESIGN.md §2: each participant hosts a row).

Mode draws translate into operations as the paper describes:

* ``IR`` → read one entry (table ``IR`` + entry ``R``),
* ``IW`` → write one entry (table ``IW`` + entry ``W``),
* ``R``  → read the whole table (table ``R``),
* ``W``  → write the whole table (table ``W``),
* ``U``  → read-then-write the whole table (table ``U``, then the Rule 7
  upgrade to ``W``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..core.modes import LockMode
from ..errors import ConfigurationError

#: The paper's request-mode mix (mode, probability).
PAPER_MODE_MIX: Tuple[Tuple[LockMode, float], ...] = (
    (LockMode.IR, 0.80),
    (LockMode.R, 0.10),
    (LockMode.U, 0.04),
    (LockMode.IW, 0.05),
    (LockMode.W, 0.01),
)


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one airline-reservation workload run."""

    ops_per_node: int = 30
    cs_mean: float = 0.015
    idle_mean: float = 0.150
    latency_mean: float = 0.150
    mode_mix: Tuple[Tuple[LockMode, float], ...] = PAPER_MODE_MIX
    entries: Optional[int] = None  # None → one entry per node
    locality: float = 0.8
    seed: int = 42

    def __post_init__(self) -> None:
        if self.ops_per_node < 0:
            raise ConfigurationError("ops_per_node must be >= 0")
        if self.cs_mean < 0 or self.idle_mean < 0 or self.latency_mean <= 0:
            raise ConfigurationError("durations must be positive")
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigurationError("locality must be within [0, 1]")
        if self.entries is not None and self.entries < 1:
            raise ConfigurationError("entries must be >= 1 when given")
        total = sum(weight for _mode, weight in self.mode_mix)
        if total <= 0:
            raise ConfigurationError("mode mix weights must sum > 0")
        for mode, _weight in self.mode_mix:
            if mode is LockMode.NONE:
                raise ConfigurationError("mode mix may not contain NONE")

    def entry_count(self, num_nodes: int) -> int:
        """Number of table entries for a cluster of *num_nodes* nodes."""

        return self.entries if self.entries is not None else num_nodes


@dataclasses.dataclass(frozen=True)
class Operation:
    """One drawn application operation."""

    mode: LockMode      # the drawn request mode (paper's mix)
    entry: Optional[int]  # target entry for IR/IW draws, None for table ops

    @property
    def is_entry_op(self) -> bool:
        """True for single-entry accesses (``IR``/``IW`` draws)."""

        return self.entry is not None

"""Messages of Raymond's tree-based mutual-exclusion algorithm [16].

Two message types, like Naimi's: a request travelling toward the current
privilege holder along static tree edges, and the privilege (token).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..core.messages import LockId, NodeId, TraceContext


@dataclasses.dataclass(frozen=True)
class RaymondMessage:
    """Base class for Raymond protocol messages."""

    lock_id: LockId
    sender: NodeId
    #: Optional causal-tracing context (see repro.core.messages).
    trace: Optional[TraceContext] = dataclasses.field(
        default=None, kw_only=True, compare=False, repr=False
    )


@dataclasses.dataclass(frozen=True)
class RaymondRequestMessage(RaymondMessage):
    """A request from a neighbour (or, transitively, its subtree).

    ``fencing_token`` is the issuing session's lease fencing token (see
    :mod:`repro.leases`); ``0`` = unfenced.  A positive token at or below
    the receiver's fence floor marks a revoked holder's request and is
    dropped.
    """

    fencing_token: int = 0


@dataclasses.dataclass(frozen=True)
class RaymondPrivilegeMessage(RaymondMessage):
    """The privilege (token), moving one tree edge at a time."""


RAYMOND_MESSAGE_TYPE_LABELS = {
    RaymondRequestMessage: "request",
    RaymondPrivilegeMessage: "token",
}


def raymond_message_type_label(message: RaymondMessage) -> str:
    """Return the metrics label for *message*."""

    return RAYMOND_MESSAGE_TYPE_LABELS[type(message)]

"""Raymond's tree-based mutual-exclusion automaton [16].

The paper's related-work section contrasts its dynamic copyset tree with
Raymond's **static** logical tree: here, nodes never re-point their links;
the privilege walks tree edges one hop at a time, and each node keeps a
local FIFO of which neighbour (or itself) wants it next.  Requests are
O(height) ≈ O(log n) on a balanced tree, but without Naimi's path
compression — implementing it lets the benchmarks measure the paper's
"dynamic beats non-adaptive" claim directly.

Classic algorithm state per node: ``holder`` (the neighbour in whose
direction the privilege lies, or self), a ``request_q`` of pending
requesters (neighbours or SELF), and the ``asked`` flag that prevents
duplicate requests on one edge.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple, Union

from ..core.messages import Envelope, LockId, NodeId, TraceContext
from ..errors import LockUsageError, ProtocolError
from ..obs.sink import ENQUEUED, GRANTED, ISSUED, RELEASED, ObsSink
from .messages import (
    RaymondMessage,
    RaymondPrivilegeMessage,
    RaymondRequestMessage,
)

#: Sentinel queued when this node itself wants the critical section.
SELF = "self"

#: Signature of the grant listener: ``(lock_id, ctx)``.
RaymondGrantListener = Callable[[LockId, object], None]


def _noop_listener(lock_id: LockId, ctx: object) -> None:
    """Default listener used when the caller does not need callbacks."""


class RaymondAutomaton:
    """Per-(node, lock) state of Raymond's algorithm.

    Parameters
    ----------
    node_id:
        This node's identity.
    lock_id:
        The lock (privilege) this automaton manages.
    holder:
        Initial direction of the privilege: ``None`` iff this node starts
        holding it; otherwise the *neighbour* on the static tree path
        toward the initial holder.
    listener:
        Called as ``listener(lock_id, ctx)`` when a request is granted.
    """

    def __init__(
        self,
        node_id: NodeId,
        lock_id: LockId,
        holder: Optional[NodeId],
        listener: RaymondGrantListener = _noop_listener,
    ) -> None:
        self._node_id = node_id
        self._lock_id = lock_id
        self._holder: Optional[NodeId] = holder  # None = privilege here
        #: FIFO of (requester, trace context of its request).  The trace
        #: context travels with the queue entry so the privilege (and any
        #: request re-issued on the next edge) rejoins the causal chain of
        #: the request it actually serves; ``None`` for SELF entries (the
        #: transport mints a root chain for a request leaving its origin).
        self._request_q: Deque[
            Tuple[Union[str, NodeId], Optional[TraceContext]]
        ] = deque()
        self._asked = False
        self._using = False
        self._ctx: object = None
        self._listener = listener
        #: Optional observability sink (see :mod:`repro.obs`).  Span key
        #: is ``(lock_id, node)`` — one outstanding request per node.
        self.obs: Optional[ObsSink] = None
        #: Optional durability journal (see :mod:`repro.persist`); same
        #: ``None``-gated pattern as ``obs``.
        self.persist = None
        #: Optional flight recorder (see :mod:`repro.obs.flightrec`);
        #: same ``None``-gated pattern.
        self.flightrec = None
        # Lease fencing (see repro.leases): highest revoked fencing token
        # observed for this lock.  Messages presenting a positive token at
        # or below the floor are dropped by :meth:`handle`.
        self._fence_floor = 0

    @property
    def fence_floor(self) -> int:
        """Highest revoked fencing token observed (lease extension)."""

        return self._fence_floor

    def raise_fence_floor(self, token: int) -> None:
        """Reject future messages fenced at or below *token*."""

        self._flight_op("raise_fence_floor", token=int(token))
        if token > self._fence_floor:
            self._fence_floor = int(token)
            self._persist("fence-raised")

    def _persist(self, kind: str) -> None:
        if self.persist is not None:
            self.persist.record(self, kind)

    def _flight_op(self, op: str, **args) -> None:
        if self.flightrec is not None:
            self.flightrec.record_op(self._lock_id, op, args)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def node_id(self) -> NodeId:
        """This node's identity."""

        return self._node_id

    @property
    def lock_id(self) -> LockId:
        """The managed lock's id."""

        return self._lock_id

    @property
    def has_privilege(self) -> bool:
        """Whether the privilege currently rests at this node."""

        return self._holder is None

    @property
    def in_critical_section(self) -> bool:
        """Whether the application currently holds the lock here."""

        return self._using

    @property
    def holder(self) -> Optional[NodeId]:
        """Neighbour toward the privilege (``None`` = here)."""

        return self._holder

    @property
    def queue_length(self) -> int:
        """Length of the local request queue."""

        return len(self._request_q)

    def is_idle(self) -> bool:
        """True iff no CS, no queued requesters, nothing asked."""

        return not (self._using or self._request_q or self._asked)

    def snapshot(self):
        """Read-only :class:`repro.obs.live.LockSnapshot` of this node.

        Raymond state maps onto the shared snapshot shape: ``holder`` is
        the parent edge toward the privilege, the critical section is an
        exclusive ``W`` hold, and ``request_q`` entries are queue entries
        (a ``SELF`` entry doubles as this node's pending request).
        """

        from ..obs.live import LockSnapshot, QueueEntry

        entries = []
        wants_self = False
        for entry, _trace in self._request_q:
            origin = self._node_id if entry == SELF else entry
            if entry == SELF:
                wants_self = True
            entries.append(
                QueueEntry(
                    origin=origin,
                    mode="W",
                    key=f"{self._lock_id}:{origin}",
                )
            )
        return LockSnapshot(
            lock=self._lock_id,
            believes_token=self._holder is None,
            parent=self._holder,
            held=(("W", 1),) if self._using else (),
            pending="W" if wants_self else None,
            queue=tuple(entries),
        )

    # ------------------------------------------------------------------
    # Application API.
    # ------------------------------------------------------------------

    def request(self, ctx: object = None) -> List[Envelope]:
        """Request the critical section; grant arrives via the listener."""

        self._flight_op("request")
        if self._using or any(entry == SELF for entry, _ in self._request_q):
            raise LockUsageError(
                f"node {self._node_id} already requested {self._lock_id}"
            )
        self._ctx = ctx
        self._request_q.append((SELF, None))
        if self.obs is not None:
            key = (self._lock_id, self._node_id)
            self.obs.phase(self._node_id, self._lock_id, key, ISSUED)
            self.obs.phase(self._node_id, self._lock_id, key, ENQUEUED)
            self.obs.queue_depth(
                self._node_id, self._lock_id, len(self._request_q)
            )
        out: List[Envelope] = []
        out.extend(self._assign_privilege())
        out.extend(self._make_request())
        self._persist("request")
        return out

    def release(self) -> List[Envelope]:
        """Leave the critical section; pass the privilege onward if asked."""

        self._flight_op("release")
        if not self._using:
            raise LockUsageError(
                f"node {self._node_id} is not in the CS of {self._lock_id}"
            )
        self._using = False
        if self.obs is not None:
            self.obs.phase(self._node_id, self._lock_id, None, RELEASED)
        out: List[Envelope] = []
        out.extend(self._assign_privilege())
        out.extend(self._make_request())
        self._persist("release")
        return out

    # ------------------------------------------------------------------
    # Transport API.
    # ------------------------------------------------------------------

    def handle(self, message: RaymondMessage) -> List[Envelope]:
        """Process one incoming protocol message, returning replies."""

        if message.lock_id != self._lock_id:
            raise ProtocolError(
                f"message for lock {message.lock_id!r} delivered to "
                f"automaton of {self._lock_id!r}"
            )
        if self.flightrec is not None:
            self.flightrec.record_msg(self._lock_id, message)
        token = getattr(message, "fencing_token", 0)
        if 0 < token <= self._fence_floor:
            return []  # Stale fencing token: a revoked holder's traffic.
        out: List[Envelope] = []
        if isinstance(message, RaymondRequestMessage):
            self._request_q.append((message.sender, message.trace))
            if self.obs is not None:
                self.obs.queue_depth(
                    self._node_id, self._lock_id, len(self._request_q)
                )
        elif isinstance(message, RaymondPrivilegeMessage):
            if self._holder is None:
                raise ProtocolError(
                    f"node {self._node_id} received a privilege it holds"
                )
            self._holder = None
            self._asked = False  # 'asked' is only meaningful toward a holder
        else:
            raise ProtocolError(f"unknown message {type(message).__name__}")
        out.extend(self._assign_privilege())
        out.extend(self._make_request())
        self._persist("handle")
        return out

    # ------------------------------------------------------------------
    # The two classic procedures.
    # ------------------------------------------------------------------

    def _assign_privilege(self) -> List[Envelope]:
        if self._holder is not None or self._using or not self._request_q:
            return []
        head, head_trace = self._request_q.popleft()
        if self.obs is not None:
            self.obs.queue_depth(
                self._node_id, self._lock_id, len(self._request_q)
            )
        if head == SELF:
            self._using = True
            if self.obs is not None:
                self.obs.phase(
                    self._node_id,
                    self._lock_id,
                    (self._lock_id, self._node_id),
                    GRANTED,
                )
            ctx, self._ctx = self._ctx, None
            self._listener(self._lock_id, ctx)
            return []
        self._holder = head
        self._asked = False
        return [
            Envelope(
                head,
                RaymondPrivilegeMessage(
                    lock_id=self._lock_id,
                    sender=self._node_id,
                    trace=head_trace,
                ),
            )
        ]

    def _make_request(self) -> List[Envelope]:
        if self._holder is None or self._asked or not self._request_q:
            return []
        self._asked = True
        return [
            Envelope(
                self._holder,
                RaymondRequestMessage(
                    lock_id=self._lock_id,
                    sender=self._node_id,
                    trace=self._request_q[0][1],
                ),
            )
        ]

    # ------------------------------------------------------------------
    # God-view membership splices (see repro.sim.cluster).
    # ------------------------------------------------------------------

    def splice_holder(self, holder: Optional[NodeId]) -> None:
        """Re-point the privilege direction after a topology splice.

        God-view maintenance for fault-free membership changes: *holder*
        must be a tree neighbour of this node in the spliced topology (or
        ``None`` to transplant the privilege here).  The caller
        guarantees quiescence, so the ``asked`` flag is clear and stays
        clear.
        """

        self._flight_op("splice_holder", holder=holder)
        if holder == self._node_id:
            raise ProtocolError("a node cannot hold the privilege toward itself")
        self._holder = holder
        self._asked = False
        self._persist("splice")

    # ------------------------------------------------------------------
    # Durability (see repro.persist).
    # ------------------------------------------------------------------

    def persisted_state(self) -> dict:
        """Full JSON-safe state for the durability journal.

        Queue entries are the SELF sentinel or a neighbour id; trace
        contexts are not persisted (a restored process has a fresh
        tracer) and restore as ``None``.
        """

        return {
            "snapshot": self.snapshot().to_payload(),
            "holder": self._holder,
            "asked": self._asked,
            "using": self._using,
            "queue": [entry for entry, _trace in self._request_q],
            "fence_floor": self._fence_floor,
        }

    def adopt_persisted(self, state: dict) -> None:
        """Replace this automaton's state with a persisted payload."""

        self._flight_op("adopt_persisted", state=state)
        holder = state.get("holder")
        self._holder = None if holder is None else int(holder)
        self._asked = bool(state.get("asked", False))
        self._using = bool(state.get("using", False))
        self._request_q = deque(
            (SELF if entry == SELF else int(entry), None)
            for entry in state.get("queue", ())
        )
        self._fence_floor = int(state.get("fence_floor", 0))
        self._ctx = None

    def flight_state(self) -> dict:
        """Exact JSON-safe state for flight-recorder checkpoints.

        Queue entries reduce to the SELF sentinel or the neighbour id;
        trace contexts never feed back into protocol state and restore
        as ``None``.
        """

        return {
            "holder": self._holder,
            "asked": self._asked,
            "using": self._using,
            "queue": [entry for entry, _trace in self._request_q],
            "fence_floor": self._fence_floor,
        }

    def restore_flight_state(self, state: dict) -> None:
        """Exact inverse of :meth:`flight_state` (replay only)."""

        holder = state.get("holder")
        self._holder = None if holder is None else int(holder)
        self._asked = bool(state.get("asked", False))
        self._using = bool(state.get("using", False))
        self._request_q = deque(
            (SELF if entry == SELF else int(entry), None)
            for entry in state.get("queue", ())
        )
        self._fence_floor = int(state.get("fence_floor", 0))
        self._ctx = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RaymondAutomaton node={self._node_id} lock={self._lock_id!r} "
            f"privilege={self.has_privilege} using={self._using} "
            f"holder={self._holder} q={[e for e, _ in self._request_q]} "
            f"asked={self._asked}>"
        )

"""Per-node multiplexer for Raymond locks over a static tree."""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..core.messages import Envelope, LockId, NodeId
from ..errors import ConfigurationError
from .automaton import RaymondAutomaton, RaymondGrantListener, _noop_listener
from .messages import RaymondMessage
from .topology import Topology


class RaymondLockSpace:
    """All Raymond automata hosted by one node (one shared topology)."""

    def __init__(
        self,
        node_id: NodeId,
        topology: Topology,
        listener: RaymondGrantListener = _noop_listener,
    ) -> None:
        if node_id not in topology:
            raise ConfigurationError(f"node {node_id} missing from topology")
        self._node_id = node_id
        self._topology = topology
        self._listener = listener
        self._automata: Dict[LockId, RaymondAutomaton] = {}
        #: Optional observability sink propagated to every automaton this
        #: space creates (set before first use; None = zero-cost no-op).
        self.obs = None
        #: Optional flight recorder, propagated the same way (see
        #: :class:`repro.obs.flightrec.FlightRecorder`).
        self.flightrec = None

    @property
    def node_id(self) -> NodeId:
        """This node's identity."""

        return self._node_id

    def automaton(self, lock_id: LockId) -> RaymondAutomaton:
        """Return (creating on first use) the automaton for *lock_id*."""

        existing = self._automata.get(lock_id)
        if existing is not None:
            return existing
        automaton = RaymondAutomaton(
            node_id=self._node_id,
            lock_id=lock_id,
            holder=self._topology[self._node_id],
            listener=self._listener,
        )
        automaton.obs = self.obs
        automaton.flightrec = self.flightrec
        if self.flightrec is not None:
            self.flightrec.record_birth(
                lock_id, {"holder": automaton.holder}
            )
        self._automata[lock_id] = automaton
        return automaton

    def request(self, lock_id: LockId, ctx: object = None) -> List[Envelope]:
        """Request *lock_id*; the grant arrives via the listener."""

        return self.automaton(lock_id).request(ctx)

    def release(self, lock_id: LockId) -> List[Envelope]:
        """Release *lock_id* (must be inside its critical section)."""

        return self.automaton(lock_id).release()

    def handle(self, message: RaymondMessage) -> List[Envelope]:
        """Route an incoming message to the automaton it concerns."""

        return self.automaton(message.lock_id).handle(message)

    def flight_state(self):
        """Whole-node state for flight-recorder checkpoints (pure read)."""

        return {
            "clock": 0,
            "locks": [
                [lock_id, self._automata[lock_id].flight_state()]
                for lock_id in sorted(self._automata, key=str)
            ],
        }

    def automata(self) -> Iterable[RaymondAutomaton]:
        """Iterate over every instantiated automaton (for monitors)."""

        return self._automata.values()

"""Second baseline: Raymond's static-tree mutual exclusion [16].

The paper's related work (§5) singles out Raymond's algorithm as the
other O(log n) token protocol, differing in its **non-adaptive** logical
structure: the tree never changes, so there is no path compression.
Implementing it alongside Naimi-Tréhel lets the benchmark suite measure
that comparison (``benchmarks/bench_related_work.py``).
"""

from .automaton import RaymondAutomaton
from .lockspace import RaymondLockSpace
from .messages import (
    RaymondMessage,
    RaymondPrivilegeMessage,
    RaymondRequestMessage,
    raymond_message_type_label,
)
from .topology import balanced_binary_tree, chain, star, validate

__all__ = [
    "RaymondAutomaton",
    "RaymondLockSpace",
    "RaymondMessage",
    "RaymondPrivilegeMessage",
    "RaymondRequestMessage",
    "balanced_binary_tree",
    "chain",
    "raymond_message_type_label",
    "star",
    "validate",
]

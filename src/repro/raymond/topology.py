"""Static tree topologies for Raymond's algorithm.

Raymond's correctness only needs *a* tree; its performance depends on the
tree's height and how well it matches traffic.  The balanced binary tree
(the usual O(log n) presentation) is the default; a chain (worst case)
and a star (best case for one-hop requests) are provided for the
topology-sensitivity tests.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.messages import NodeId
from ..errors import ConfigurationError

#: A topology maps each node to its tree parent (root → None).  The
#: privilege starts at the root, so each node's initial ``holder`` is its
#: parent.
Topology = Dict[NodeId, Optional[NodeId]]


def balanced_binary_tree(num_nodes: int, root: NodeId = 0) -> Topology:
    """Heap-shaped binary tree: node ``i``'s parent is ``(i - 1) // 2``.

    Height ⌈log2(n)⌉ — the standard O(log n) Raymond configuration.
    ``root`` relabels node 0 by swapping ids, letting the privilege start
    anywhere while keeping the shape.
    """

    if num_nodes < 1:
        raise ConfigurationError("need at least one node")
    if not 0 <= root < num_nodes:
        raise ConfigurationError("root must be a valid node id")

    def relabel(i: NodeId) -> NodeId:
        if i == 0:
            return root
        if i == root:
            return 0
        return i

    topology: Topology = {}
    for index in range(num_nodes):
        parent = None if index == 0 else (index - 1) // 2
        topology[relabel(index)] = None if parent is None else relabel(parent)
    return topology


def chain(num_nodes: int) -> Topology:
    """A path 0-1-2-…: height n-1, Raymond's worst case."""

    if num_nodes < 1:
        raise ConfigurationError("need at least one node")
    return {i: (i - 1 if i > 0 else None) for i in range(num_nodes)}


def star(num_nodes: int, center: NodeId = 0) -> Topology:
    """Every node adjacent to *center*: height 1."""

    if num_nodes < 1:
        raise ConfigurationError("need at least one node")
    if not 0 <= center < num_nodes:
        raise ConfigurationError("center must be a valid node id")
    return {
        i: (None if i == center else center) for i in range(num_nodes)
    }


def validate(topology: Topology) -> None:
    """Check that *topology* is a rooted tree (raises otherwise)."""

    roots = [node for node, parent in topology.items() if parent is None]
    if len(roots) != 1:
        raise ConfigurationError(f"expected exactly one root, got {roots}")
    for node, parent in topology.items():
        seen = {node}
        current = parent
        while current is not None:
            if current in seen:
                raise ConfigurationError(f"cycle through node {current}")
            seen.add(current)
            current = topology.get(current)
            if current is None and topology.get(current, "x") == "x":
                break

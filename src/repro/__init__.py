"""repro - reproduction of Desai & Mueller, "Scalable Distributed
Concurrency Services for Hierarchical Locking" (ICDCS 2003).

The package provides:

* :mod:`repro.core` - the paper's decentralized hierarchical locking
  protocol (modes, rule tables, the automaton, per-node lock spaces),
* :mod:`repro.naimi` - the Naimi-Trehel baseline,
* :mod:`repro.sim` - a deterministic discrete-event simulator with a
  point-to-point network model and ready-made clusters,
* :mod:`repro.runtime` - a real-threads in-process deployment of the same
  automata,
* :mod:`repro.services` - a CORBA-concurrency-service-style ``LockSet``
  facade and a small transaction layer,
* :mod:`repro.workload`, :mod:`repro.metrics`, :mod:`repro.experiments` -
  the airline workload and everything needed to regenerate the paper's
  figures,
* :mod:`repro.verification` - safety monitors and a model explorer.

Quickstart::

    from repro import LockMode, SimHierarchicalCluster, Simulator, Timeout

    sim = Simulator()
    cluster = SimHierarchicalCluster(num_nodes=4, sim=sim)

    def reader(node):
        client = cluster.client(node)
        yield client.acquire("db/t", LockMode.IR)
        yield client.acquire("db/t/0", LockMode.R)
        yield Timeout(sim, 0.01)
        client.release("db/t/0", LockMode.R)
        client.release("db/t", LockMode.IR)

    from repro.sim import run_processes
    run_processes(sim, [reader(n) for n in range(4)])
"""

from .core import (
    HierarchicalLockAutomaton,
    LockMode,
    LockSpace,
    ResourceTree,
    lock_plan,
    release_plan,
)
from .errors import (
    ConfigurationError,
    InvariantViolation,
    LockUsageError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .metrics import MetricsCollector
from .naimi import NaimiAutomaton, NaimiLockSpace
from .sim import (
    SimEvent,
    SimHierarchicalCluster,
    SimNaimiCluster,
    Simulator,
    Timeout,
    run_processes,
)
from .workload import WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "HierarchicalLockAutomaton",
    "InvariantViolation",
    "LockMode",
    "LockSpace",
    "LockUsageError",
    "MetricsCollector",
    "NaimiAutomaton",
    "NaimiLockSpace",
    "ProtocolError",
    "ReproError",
    "ResourceTree",
    "SimEvent",
    "SimHierarchicalCluster",
    "SimNaimiCluster",
    "SimulationError",
    "Simulator",
    "Timeout",
    "WorkloadSpec",
    "lock_plan",
    "release_plan",
    "run_processes",
    "__version__",
]

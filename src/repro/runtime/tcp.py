"""TCP loopback transport: the lock service over real sockets.

Deploys the very same automata over genuine TCP connections (loopback by
default), exercising everything a wire deployment implies: framing,
per-connection FIFO (which the protocol's freeze propagation relies on —
TCP provides it), lazy connection establishment and concurrent readers.

Framing is 4-byte big-endian length + pickled message.  Pickle is only
safe among trusting peers; this transport is meant for loopback test
deployments and as the reference for a production codec, not for
untrusted networks.

Use with the standard threaded cluster::

    transport = TcpTransport()
    cluster = ThreadedHierarchicalCluster(4, transport=transport)
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..core.messages import Envelope, NodeId
from ..errors import SimulationError
from ..obs.sink import ObsSink
from .transport import MessageHandler, MessageObserver

_HEADER = struct.Struct(">I")

#: Maximum frame size accepted (a protocol message is tiny; a huge frame
#: indicates corruption).
MAX_FRAME = 16 * 1024 * 1024


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[bytes]:
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise SimulationError(f"oversized frame ({length} bytes)")
    return _recv_exact(sock, length)


class TcpTransport:
    """One listening socket per node; lazy outbound connections.

    Implements the same ``register/start/stop/send`` surface as
    :class:`~repro.runtime.transport.ThreadedTransport`, so it drops into
    :class:`~repro.runtime.cluster.ThreadedHierarchicalCluster` unchanged.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        observer: Optional[MessageObserver] = None,
        obs: Optional[ObsSink] = None,
    ) -> None:
        self._host = host
        self._observer = observer
        #: Optional observability sink: frames are reported as ``message``
        #: plus ``wire_sent(frame bytes, serialize+send seconds)`` and
        #: ``wire_received(frame bytes)`` on the reader side.
        self.obs = obs
        #: Optional causal tracer, adopted from ``obs`` when it has one.
        #: Trace contexts are ordinary dataclass fields, so they survive
        #: the pickle frame codec with no extra wire format.
        self.tracer = getattr(obs, "tracer", None)
        self._handlers: Dict[NodeId, MessageHandler] = {}
        self._servers: Dict[NodeId, socket.socket] = {}
        self._addresses: Dict[NodeId, Tuple[str, int]] = {}
        self._outbound: Dict[Tuple[NodeId, NodeId], socket.socket] = {}
        self._outbound_lock = threading.Lock()
        self._accepted: List[socket.socket] = []
        self._accepted_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopping = False
        self._messages_sent = 0
        self._count_lock = threading.Lock()
        #: Optional callback ``(peer_or_-1, reason)`` invoked when a
        #: reader loses its connection (peer disconnect, oversized or
        #: corrupt frame).  The recovery layer plugs in here; the same
        #: event also reaches ``obs.peer_lost``.
        self.on_peer_lost: Optional[Callable[[NodeId, str], None]] = None
        self.peers_lost = 0

    @property
    def messages_sent(self) -> int:
        """Total frames sent between distinct nodes."""

        return self._messages_sent

    def address_of(self, node_id: NodeId) -> Tuple[str, int]:
        """The (host, port) a node listens on (available after register)."""

        return self._addresses[node_id]

    def register(self, node_id: NodeId, handler: MessageHandler) -> None:
        """Bind a listening socket for *node_id* and attach its handler."""

        if self._started:
            raise SimulationError("cannot register nodes after start()")
        if node_id in self._handlers:
            raise SimulationError(f"node {node_id} registered twice")
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self._host, 0))
        server.listen(32)
        self._handlers[node_id] = handler
        self._servers[node_id] = server
        self._addresses[node_id] = server.getsockname()

    def start(self) -> None:
        """Start one accept loop per node."""

        if self._started:
            return
        self._started = True
        for node_id, server in self._servers.items():
            thread = threading.Thread(
                target=self._accept_loop,
                args=(node_id, server),
                name=f"repro-tcp-accept-{node_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Close every socket and join the I/O threads."""

        if not self._started:
            return
        self._stopping = True
        for server in self._servers.values():
            # close() alone does not wake a thread blocked in accept();
            # shutdown() does (the accept fails with EINVAL/ENOTCONN).
            try:
                server.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                server.close()
            except OSError:  # pragma: no cover - platform specific
                pass
        with self._outbound_lock:
            for sock in self._outbound.values():
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()
            self._outbound.clear()
        with self._accepted_lock:
            for sock in self._accepted:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()
            self._accepted.clear()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        self._started = False
        self._stopping = False

    def send(self, sender: NodeId, envelopes: List[Envelope]) -> None:
        """Serialize and transmit envelopes over per-pair connections."""

        for envelope in envelopes:
            dest = envelope.dest
            if dest not in self._handlers:
                raise SimulationError(f"message to unregistered node {dest}")
            if dest == sender:
                # The protocol never self-sends; handle defensively so a
                # custom client cannot wedge the transport.
                replies = self._handlers[dest](envelope.message)
                if replies:
                    self.send(dest, replies)
                continue
            if self._observer is not None:
                self._observer(sender, dest, envelope.message)
            if self.tracer is not None:
                envelope = self.tracer.outbound(sender, envelope)
            started = time.perf_counter()
            payload = pickle.dumps((sender, envelope.message))
            sock = self._connection(sender, dest)
            try:
                _send_frame(sock, payload)
            except OSError as exc:
                if self._stopping:
                    return
                # The cached connection died (the peer's reader closed it
                # after a bad frame, or the peer restarted).  Reconnect
                # lazily, once: a fresh connection either works or the
                # destination is genuinely gone.
                self._drop_connection(sender, dest, sock)
                try:
                    sock = self._connection(sender, dest)
                    _send_frame(sock, payload)
                except OSError as retry_exc:
                    if self._stopping:
                        return
                    self._drop_connection(sender, dest, sock)
                    raise SimulationError(
                        f"send {sender}→{dest} failed: {retry_exc}"
                    ) from retry_exc
            if self.obs is not None:
                self.obs.message(sender, dest, type(envelope.message).__name__)
                self.obs.wire_sent(
                    sender,
                    dest,
                    _HEADER.size + len(payload),
                    time.perf_counter() - started,
                )
            with self._count_lock:
                self._messages_sent += 1

    # ------------------------------------------------------------------

    def _connection(self, sender: NodeId, dest: NodeId) -> socket.socket:
        key = (sender, dest)
        with self._outbound_lock:
            sock = self._outbound.get(key)
            if sock is None:
                sock = socket.create_connection(self._addresses[dest])
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._outbound[key] = sock
            return sock

    def _drop_connection(
        self, sender: NodeId, dest: NodeId, sock: socket.socket
    ) -> None:
        """Evict a dead cached connection so the next send reconnects."""

        with self._outbound_lock:
            if self._outbound.get((sender, dest)) is sock:
                del self._outbound[(sender, dest)]
        try:
            sock.close()
        except OSError:  # pragma: no cover - platform specific
            pass

    def _peer_lost(
        self, node_id: NodeId, conn: socket.socket, peer: NodeId, reason: str
    ) -> None:
        """A reader lost its connection: surface it and clean up.

        *peer* is the sender of the last good frame on the connection, or
        ``-1`` if none arrived before it died.  The connection is removed
        from the accepted list and closed, so the peer's next send (which
        reconnects lazily) gets a fresh reader.
        """

        with self._accepted_lock:
            if conn in self._accepted:
                self._accepted.remove(conn)
        try:
            conn.close()
        except OSError:  # pragma: no cover - platform specific
            pass
        if self._stopping:
            return  # An orderly shutdown is not a failure.
        with self._count_lock:
            self.peers_lost += 1
        if self.obs is not None:
            self.obs.peer_lost(peer, reason)
        if self.on_peer_lost is not None:
            self.on_peer_lost(peer, reason)

    def _accept_loop(self, node_id: NodeId, server: socket.socket) -> None:
        while True:
            try:
                conn, _peer = server.accept()
            except OSError:
                return  # server closed: shutting down
            with self._accepted_lock:
                self._accepted.append(conn)
            thread = threading.Thread(
                target=self._reader_loop,
                args=(node_id, conn),
                name=f"repro-tcp-reader-{node_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _reader_loop(self, node_id: NodeId, conn: socket.socket) -> None:
        handler = self._handlers[node_id]
        peer: NodeId = -1
        while True:
            try:
                payload = _recv_frame(conn)
            except OSError as exc:
                self._peer_lost(node_id, conn, peer, f"socket error: {exc}")
                return
            except SimulationError as exc:
                # Oversized frame: the stream is garbage from here on.
                self._peer_lost(node_id, conn, peer, str(exc))
                return
            if payload is None:
                self._peer_lost(node_id, conn, peer, "peer disconnected")
                return
            if self.obs is not None:
                self.obs.wire_received(node_id, _HEADER.size + len(payload))
            try:
                sender, message = pickle.loads(payload)
            except Exception as exc:
                # A corrupt frame poisons the whole stream (framing can
                # no longer be trusted); drop the connection and let the
                # peer reconnect lazily.
                self._peer_lost(node_id, conn, peer, f"corrupt frame: {exc}")
                return
            peer = sender
            tracer = self.tracer
            if tracer is None:
                replies = handler(message)
                if replies:
                    self.send(node_id, replies)
                continue
            tracer.delivered(node_id, message)
            tracer.begin_delivery(node_id, message)
            try:
                replies = handler(message)
                if replies:
                    self.send(node_id, replies)
            finally:
                tracer.end_delivery(node_id)

"""Real-threads in-process deployment of the lock protocols."""

from .cluster import BlockingLockClient, ThreadedHierarchicalCluster
from .tcp import TcpTransport
from .transport import ThreadedTransport

__all__ = [
    "BlockingLockClient",
    "TcpTransport",
    "ThreadedHierarchicalCluster",
    "ThreadedTransport",
]

"""Threaded in-process cluster: the protocol under real concurrency.

While :mod:`repro.sim` answers the paper's *performance* questions
deterministically, this runtime deploys the very same automata under real
threads and blocking client calls — the functional "is this actually a
usable lock service?" deployment that examples and the services layer
build on.

Every node consists of a :class:`~repro.core.lockspace.LockSpace` (or
:class:`~repro.naimi.lockspace.NaimiLockSpace`), a mutex serializing all
access to it, and a transport dispatcher thread.  Clients block on
:class:`threading.Event` objects that the grant listener sets.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..core.automaton import FULL_PROTOCOL, ProtocolOptions
from ..core.lockspace import LockSpace, TokenHomeFn, default_token_home
from ..core.messages import LockId, NodeId
from ..core.modes import LockMode
from ..errors import ConfigurationError, LockUsageError
from ..sim.rng import Distribution
from ..verification.invariants import Monitor
from .transport import ThreadedTransport


class _Waiter:
    """Grant context used by the blocking client."""

    __slots__ = ("event", "mode", "is_upgrade")

    def __init__(self, is_upgrade: bool = False) -> None:
        self.event = threading.Event()
        self.mode: Optional[LockMode] = None
        self.is_upgrade = is_upgrade


class BlockingLockClient:
    """Blocking per-node client of the hierarchical protocol."""

    def __init__(self, cluster: "ThreadedHierarchicalCluster", node_id: NodeId) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        """This client's node."""

        return self._node_id

    def acquire(
        self, lock_id: LockId, mode: LockMode, timeout: Optional[float] = None
    ) -> None:
        """Acquire *lock_id* in *mode*, blocking until granted.

        The protocol allows one outstanding request per (node, lock); a
        per-lock gate serializes concurrent same-lock acquisitions from
        different threads of this node, FIFO, so multi-threaded clients
        compose naturally.

        Raises :class:`TimeoutError` if *timeout* (seconds) elapses first.
        NOTE: on timeout the request is still outstanding — the protocol
        has no request cancellation — so the lock will eventually be
        granted and must then be released; callers treating a timeout as a
        fatal condition should tear the cluster down.
        """

        with self._cluster._request_gate(self._node_id, lock_id):
            waiter = _Waiter()
            self._cluster._submit_request(self._node_id, lock_id, mode, waiter)
            if not waiter.event.wait(timeout):
                raise TimeoutError(
                    f"node {self._node_id}: {mode} on {lock_id!r} not "
                    f"granted within {timeout}s"
                )

    def attempt(self, lock_id: LockId, mode: LockMode) -> bool:
        """CORBA-style try-lock: succeed only if grantable locally, now.

        Never sends a message: returns ``True`` and takes the lock iff the
        node's owned mode already covers *mode* (Rule 2's local path);
        otherwise returns ``False`` leaving no pending state behind.
        """

        return self._cluster._attempt_local(self._node_id, lock_id, mode)

    def release(self, lock_id: LockId, mode: LockMode) -> None:
        """Release one hold of *mode* on *lock_id*."""

        self._cluster._submit_release(self._node_id, lock_id, mode)

    def upgrade(self, lock_id: LockId, timeout: Optional[float] = None) -> None:
        """Upgrade a held ``U`` to ``W`` (Rule 7), blocking until done."""

        with self._cluster._request_gate(self._node_id, lock_id):
            waiter = _Waiter(is_upgrade=True)
            self._cluster._submit_upgrade(self._node_id, lock_id, waiter)
            if not waiter.event.wait(timeout):
                raise TimeoutError(
                    f"node {self._node_id}: upgrade on {lock_id!r} not "
                    f"granted within {timeout}s"
                )

    def downgrade(
        self, lock_id: LockId, held: LockMode, to: LockMode
    ) -> None:
        """Atomically weaken a held mode (extension; see automaton docs)."""

        self._cluster._submit_downgrade(self._node_id, lock_id, held, to)


class ThreadedHierarchicalCluster:
    """N threaded nodes running the hierarchical protocol."""

    def __init__(
        self,
        num_nodes: int,
        token_home: TokenHomeFn = default_token_home,
        delay: Optional[Distribution] = None,
        seed: int = 0,
        monitor: Optional[Monitor] = None,
        options: ProtocolOptions = FULL_PROTOCOL,
        transport=None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.monitor = monitor
        self._monitor_lock = threading.Lock()
        self._gates: Dict[tuple, threading.Lock] = {}
        self._gates_guard = threading.Lock()
        self._clock = _WallClock()
        # Any object with register/start/stop/send works as the fabric:
        # the in-memory queue transport (default) or the TCP transport.
        self.transport = (
            transport
            if transport is not None
            else ThreadedTransport(delay=delay, seed=seed)
        )
        self._locks: Dict[NodeId, threading.RLock] = {}
        self.lockspaces: Dict[NodeId, LockSpace] = {}
        for node_id in range(num_nodes):
            self._locks[node_id] = threading.RLock()
            lockspace = LockSpace(
                node_id=node_id,
                token_home=token_home,
                listener=self._make_listener(node_id),
                options=options,
            )
            self.lockspaces[node_id] = lockspace
            self.transport.register(
                node_id, self._make_handler(node_id, lockspace)
            )
        self.clients = [
            BlockingLockClient(self, n) for n in range(num_nodes)
        ]
        self.transport.start()

    def client(self, node_id: NodeId) -> BlockingLockClient:
        """Return the blocking client of *node_id*."""

        return self.clients[node_id]

    def cluster_view(self):
        """Capture a :class:`repro.obs.live.ClusterView` of all nodes.

        Each node is snapshotted under its own mutex, so every
        :class:`~repro.obs.live.NodeSnapshot` is internally consistent;
        nodes are captured one after another, which is why the online
        audit treats cross-node disagreements as warnings while traffic
        is in flight.
        """

        from ..obs.live import ClusterView, snapshot_node

        nodes = []
        for node_id in sorted(self.lockspaces):
            with self._locks[node_id]:
                nodes.append(snapshot_node(node_id, self.lockspaces[node_id]))
        return ClusterView(
            protocol="hierarchical",
            captured_at=self._clock.now(),
            nodes=tuple(nodes),
        )

    def shutdown(self) -> None:
        """Stop the transport threads."""

        self.transport.stop()

    def __enter__(self) -> "ThreadedHierarchicalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Internal plumbing (all lockspace access under the node mutex).
    # ------------------------------------------------------------------

    def _request_gate(self, node_id: NodeId, lock_id: LockId) -> threading.Lock:
        """Per-(node, lock) mutex serializing same-lock acquisitions."""

        key = (node_id, lock_id)
        with self._gates_guard:
            gate = self._gates.get(key)
            if gate is None:
                gate = threading.Lock()
                self._gates[key] = gate
            return gate

    def _make_handler(self, node_id: NodeId, lockspace: LockSpace):
        def handler(message):
            with self._locks[node_id]:
                return lockspace.handle(message)

        return handler

    def _make_listener(self, node_id: NodeId):
        def listener(lock_id: LockId, mode: LockMode, ctx: object) -> None:
            if isinstance(ctx, _Waiter):
                if ctx.is_upgrade:
                    self._notify_release(node_id, lock_id, LockMode.U)
                self._notify_grant(node_id, lock_id, mode)
                ctx.mode = mode
                ctx.event.set()
            else:
                self._notify_grant(node_id, lock_id, mode)

        return listener

    def _notify_request(self, node: NodeId, lock_id: LockId, mode: LockMode) -> None:
        if self.monitor is not None:
            with self._monitor_lock:
                self.monitor.on_request(self._clock.now(), node, lock_id, mode)

    def _notify_grant(self, node: NodeId, lock_id: LockId, mode: LockMode) -> None:
        if self.monitor is not None:
            with self._monitor_lock:
                self.monitor.on_grant(self._clock.now(), node, lock_id, mode)

    def _notify_release(self, node: NodeId, lock_id: LockId, mode: LockMode) -> None:
        if self.monitor is not None:
            with self._monitor_lock:
                self.monitor.on_release(self._clock.now(), node, lock_id, mode)

    def _submit_request(
        self, node_id: NodeId, lock_id: LockId, mode: LockMode, waiter: _Waiter
    ) -> None:
        self._notify_request(node_id, lock_id, mode)
        with self._locks[node_id]:
            out = self.lockspaces[node_id].request(lock_id, mode, waiter)
        self.transport.send(node_id, out)

    def _attempt_local(
        self, node_id: NodeId, lock_id: LockId, mode: LockMode
    ) -> bool:
        from ..core.modes import child_can_grant, token_can_grant

        with self._locks[node_id]:
            automaton = self.lockspaces[node_id].automaton(lock_id)
            owned = automaton.owned_mode()
            if automaton.has_token:
                grantable = token_can_grant(owned, mode)
            else:
                grantable = child_can_grant(owned, mode)
            if not grantable or mode in automaton.frozen_modes:
                return False
            waiter = _Waiter()
            out = automaton.request(mode, waiter)
        self.transport.send(node_id, out)
        if not waiter.event.wait(timeout=0.0):
            raise LockUsageError("local attempt unexpectedly went remote")
        return True

    def _submit_release(
        self, node_id: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        self._notify_release(node_id, lock_id, mode)
        with self._locks[node_id]:
            out = self.lockspaces[node_id].release(lock_id, mode)
        self.transport.send(node_id, out)

    def _submit_upgrade(
        self, node_id: NodeId, lock_id: LockId, waiter: _Waiter
    ) -> None:
        with self._locks[node_id]:
            out = self.lockspaces[node_id].upgrade(lock_id, waiter)
        self.transport.send(node_id, out)

    def _submit_downgrade(
        self, node_id: NodeId, lock_id: LockId, held: LockMode, to: LockMode
    ) -> None:
        with self._locks[node_id]:
            automaton = self.lockspaces[node_id].automaton(lock_id)
            out = automaton.downgrade(held, to)
        self._notify_release(node_id, lock_id, held)
        self._notify_grant(node_id, lock_id, to)
        self.transport.send(node_id, out)


class _WallClock:
    """Monotonic wall-clock adapter matching the simulator's ``now``."""

    def __init__(self) -> None:
        import time

        self._time = time
        self._start = time.monotonic()

    def now(self) -> float:
        return self._time.monotonic() - self._start

"""In-process message transport for the threaded runtime.

Each node owns an inbox (a :class:`queue.Queue`) drained by a dedicated
dispatcher thread.  Handlers are the same transport-agnostic automata used
by the simulator; the per-node mutex in :mod:`repro.runtime.node`
serializes handler execution against application calls, so the automata
never see concurrent access.

An optional delay distribution injects artificial latency (useful to shake
out reordering bugs between *different* node pairs; per-pair FIFO is
preserved by delaying inside the destination's dispatcher, mirroring a
TCP connection's in-order delivery).
"""

from __future__ import annotations

import queue
import random
import threading
import time
from typing import Callable, Dict, List, Optional

from ..core.messages import Envelope, NodeId
from ..errors import SimulationError
from ..obs.sink import ObsSink
from ..sim.rng import Distribution

#: Handler signature, identical to the simulator's.
MessageHandler = Callable[[object], List[Envelope]]

#: Observer signature: ``(sender, dest, message)``.
MessageObserver = Callable[[NodeId, NodeId, object], None]

_STOP = object()


class ThreadedTransport:
    """Queue-per-node transport with dispatcher threads."""

    def __init__(
        self,
        delay: Optional[Distribution] = None,
        seed: int = 0,
        observer: Optional[MessageObserver] = None,
        obs: Optional[ObsSink] = None,
    ) -> None:
        self._delay = delay
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._observer = observer
        #: Optional observability sink: cross-node traffic is reported as
        #: ``message`` plus ``wire_sent(nbytes=0, enqueue→dispatch latency)``.
        self.obs = obs
        #: Optional causal tracer, adopted from ``obs`` when it has one
        #: (see :mod:`repro.obs.tracing`).
        self.tracer = getattr(obs, "tracer", None)
        self._inboxes: Dict[NodeId, "queue.Queue"] = {}
        self._handlers: Dict[NodeId, MessageHandler] = {}
        self._threads: Dict[NodeId, threading.Thread] = {}
        self._started = False
        self._messages_sent = 0
        self._count_lock = threading.Lock()
        # Envelopes enqueued but not yet fully processed (handler run AND
        # its replies enqueued).  ``drain`` quiesces on this counter, not
        # on inbox emptiness: an empty inbox says nothing about a handler
        # that is mid-flight and about to send.
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    @property
    def messages_sent(self) -> int:
        """Total envelopes transmitted between distinct nodes."""

        return self._messages_sent

    def register(self, node_id: NodeId, handler: MessageHandler) -> None:
        """Attach *handler* as the message sink of *node_id*.

        Registering on a started transport (a membership join) spawns the
        node's dispatcher thread immediately.
        """

        if node_id in self._handlers:
            raise SimulationError(f"node {node_id} registered twice")
        self._handlers[node_id] = handler
        self._inboxes[node_id] = queue.Queue()
        if self._started:
            self._spawn_dispatcher(node_id)

    def _spawn_dispatcher(self, node_id: NodeId) -> None:
        thread = threading.Thread(
            target=self._dispatch_loop,
            args=(node_id,),
            name=f"repro-transport-{node_id}",
            daemon=True,
        )
        self._threads[node_id] = thread
        thread.start()

    def start(self) -> None:
        """Spawn one dispatcher thread per registered node."""

        if self._started:
            return
        self._started = True
        for node_id in self._handlers:
            self._spawn_dispatcher(node_id)

    def stop(self) -> None:
        """Stop every dispatcher thread and join them."""

        if not self._started:
            return
        for inbox in self._inboxes.values():
            inbox.put(_STOP)
        for thread in self._threads.values():
            thread.join(timeout=5.0)
        self._started = False
        self._threads.clear()

    def send(self, sender: NodeId, envelopes: List[Envelope]) -> None:
        """Enqueue *envelopes* for delivery."""

        for envelope in envelopes:
            if envelope.dest not in self._inboxes:
                raise SimulationError(
                    f"message to unregistered node {envelope.dest}"
                )
            if envelope.dest != sender:
                with self._count_lock:
                    self._messages_sent += 1
                if self._observer is not None:
                    self._observer(sender, envelope.dest, envelope.message)
                if self.obs is not None:
                    self.obs.message(
                        sender,
                        envelope.dest,
                        type(envelope.message).__name__,
                    )
                if self.tracer is not None:
                    envelope = self.tracer.outbound(sender, envelope)
            with self._inflight_lock:
                self._inflight += 1
            self._inboxes[envelope.dest].put(
                (sender, envelope, time.perf_counter())
            )

    def _quiesced(self) -> bool:
        """True iff no envelope is enqueued or being handled right now."""

        with self._inflight_lock:
            return self._inflight == 0

    def drain(self, poll: float = 0.001, settle_rounds: int = 3) -> None:
        """Block until the fabric is quiescent.

        Quiescence is tracked exactly: every enqueued envelope bumps an
        in-flight counter that is only decremented *after* its handler
        returned and any replies were enqueued (which re-bumps the counter
        first), so the counter never falsely touches zero in the middle of
        a handler cascade.  The old inbox-emptiness heuristic could race a
        mid-flight handler: all inboxes look empty for several polls while
        one dispatcher is still inside ``handler()`` about to ``send``.

        *settle_rounds* consecutive quiescent polls are still required,
        plus a final confirm pass — if anything slipped in between the
        last poll and the confirmation (e.g. an application thread calling
        ``send`` concurrently with ``drain``), the settle loop restarts.
        """

        while True:
            consecutive = 0
            while consecutive < settle_rounds:
                if self._quiesced():
                    consecutive += 1
                else:
                    consecutive = 0
                time.sleep(poll)
            # Drain-confirm second pass: declare idle only if nothing
            # arrived since the settle loop's last observation.
            if self._quiesced():
                return

    def _dispatch_loop(self, node_id: NodeId) -> None:
        inbox = self._inboxes[node_id]
        handler = self._handlers[node_id]
        while True:
            item = inbox.get()
            if item is _STOP:
                return
            sender, envelope, enqueued_at = item
            try:
                if self.obs is not None and sender != node_id:
                    self.obs.wire_sent(
                        sender, node_id, 0, time.perf_counter() - enqueued_at
                    )
                if self._delay is not None and sender != node_id:
                    with self._rng_lock:
                        pause = self._delay.sample(self._rng)
                    time.sleep(pause)
                tracer = self.tracer
                if tracer is None or sender == node_id:
                    replies = handler(envelope.message)
                    if replies:
                        self.send(node_id, replies)
                    continue
                tracer.delivered(node_id, envelope.message)
                tracer.begin_delivery(node_id, envelope.message)
                try:
                    replies = handler(envelope.message)
                    if replies:
                        self.send(node_id, replies)
                finally:
                    tracer.end_delivery(node_id)
            finally:
                # Replies (if any) were enqueued above, so the counter
                # cannot dip to zero while the cascade continues.
                with self._inflight_lock:
                    self._inflight -= 1

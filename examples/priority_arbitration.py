#!/usr/bin/env python
"""Priority-based request arbitration (extension).

The paper's introduction claims "request arbitration through strict
priority ordering", building on the authors' prioritized token-based
mutual exclusion work [11, 12].  This example enables the
``priority_scheduling`` extension and shows a mixed workload where a
high-priority control-plane writer repeatedly jumps a crowd of
low-priority batch writers, while FIFO order still holds within each
priority level.

Run:  python examples/priority_arbitration.py
"""

from __future__ import annotations

from repro.core.automaton import ProtocolOptions
from repro.core.modes import LockMode
from repro.sim.cluster import SimHierarchicalCluster
from repro.sim.engine import Simulator, Timeout, run_processes
from repro.verification.invariants import CompatibilityMonitor

NODES = 6
LOCK = "config"


def main() -> None:
    sim = Simulator()
    monitor = CompatibilityMonitor()
    cluster = SimHierarchicalCluster(
        NODES,
        sim=sim,
        seed=17,
        monitor=monitor,
        options=ProtocolOptions(priority_scheduling=True),
    )
    grant_order = []

    def batch_writer(node):
        client = cluster.client(node)
        yield Timeout(sim, 0.01 * node)  # staggered arrivals
        yield client.acquire(LOCK, LockMode.W, priority=0)
        grant_order.append(("batch", node, sim.now))
        yield Timeout(sim, 0.100)
        client.release(LOCK, LockMode.W)

    def control_plane(node):
        client = cluster.client(node)
        yield Timeout(sim, 0.25)  # arrives after every batch writer
        yield client.acquire(LOCK, LockMode.W, priority=10)
        grant_order.append(("CONTROL", node, sim.now))
        yield Timeout(sim, 0.020)
        client.release(LOCK, LockMode.W)

    run_processes(
        sim,
        [batch_writer(n) for n in range(1, 5)] + [control_plane(5)],
    )
    monitor.assert_all_released()

    print("grant order (who, node, time):")
    for who, node, when in grant_order:
        print(f"  {when:6.3f}s  {who:<8} node {node}")
    control_position = [who for who, _n, _t in grant_order].index("CONTROL")
    overtaken = len(grant_order) - 1 - control_position
    assert overtaken >= 1, "priority scheduling had no effect"
    print(
        f"\nthe control-plane writer arrived last but was served before "
        f"{overtaken} queued batch writer(s) — priority arbitration at work"
    )
    print(
        "(within one priority level the protocol keeps its FIFO order of "
        "arrival at the token node)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Strict-2PL transactions over the hierarchical lock service.

The paper positions hierarchical locking as the concurrency substrate for
transaction processing.  This example runs concurrent bank transfers on
the threaded runtime through :mod:`repro.services.transaction`:

* each transfer is one strict two-phase-locking transaction that writes
  two account rows (``bank/accounts/<i>``) under ``IW`` intents,
* transfers over disjoint account pairs commit in parallel,
* an auditor repeatedly snapshots the *whole* table with a single
  table-level ``R`` lock — and, thanks to 2PL, every snapshot balances
  to the same total,
* one transfer uses the upgrade path (``U`` then Rule 7's atomic U→W) to
  read an account before deciding to debit it.

Run:  python examples/bank_transactions.py
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.core.modes import LockMode
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.services.transaction import TransactionManager
from repro.verification.invariants import CompatibilityMonitor

ACCOUNTS = 6
NODES = 4
TRANSFERS_PER_NODE = 6
TIMEOUT = 30.0


def main() -> None:
    balances: Dict[int, int] = {i: 100 for i in range(ACCOUNTS)}
    initial_total = sum(balances.values())
    snapshots: List[int] = []
    monitor = CompatibilityMonitor()

    with ThreadedHierarchicalCluster(NODES, monitor=monitor) as cluster:

        def transfer_worker(node: int) -> None:
            manager = TransactionManager(cluster.client(node), timeout=TIMEOUT)
            for round_index in range(TRANSFERS_PER_NODE):
                src = (node + round_index) % ACCOUNTS
                dst = (node + round_index + 1 + node) % ACCOUNTS
                if src == dst:
                    continue
                with manager.begin() as tx:
                    # Write intent on both rows (ordered to avoid
                    # row-level deadlocks between opposing transfers).
                    first, second = sorted((src, dst))
                    tx.write(f"bank/accounts/{first}")
                    tx.write(f"bank/accounts/{second}")
                    balances[src] -= 10
                    balances[dst] += 10

        def auditor() -> None:
            client = cluster.client(0)
            for _ in range(8):
                client.acquire("bank", LockMode.R, timeout=TIMEOUT)
                client.acquire("bank/accounts", LockMode.R, timeout=TIMEOUT)
                snapshots.append(sum(balances.values()))
                client.release("bank/accounts", LockMode.R)
                client.release("bank", LockMode.R)

        def upgrading_teller() -> None:
            manager = TransactionManager(cluster.client(1), timeout=TIMEOUT)
            with manager.begin() as tx:
                tx.read_for_update("bank/accounts/0")  # U: read, intending to write
                if balances[0] > 0:
                    tx.upgrade("bank/accounts/0")      # atomic U → W (Rule 7)
                    balances[0] -= 5
                    balances[1] += 5

        threads = [
            threading.Thread(target=transfer_worker, args=(node,))
            for node in range(NODES)
        ]
        threads.append(threading.Thread(target=auditor))
        threads.append(threading.Thread(target=upgrading_teller))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    monitor.assert_all_released()
    final_total = sum(balances.values())
    print(f"{NODES} tellers ran {NODES * TRANSFERS_PER_NODE} transfers "
          f"plus one upgrade-path adjustment")
    print(f"auditor snapshots (totals): {snapshots}")
    assert all(total == initial_total for total in snapshots), (
        "an auditor snapshot observed a torn transfer!"
    )
    assert final_total == initial_total
    print(f"money conserved: {initial_total} before, {final_total} after")
    print("every table-level snapshot balanced — strict 2PL held")


if __name__ == "__main__":
    main()

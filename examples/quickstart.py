#!/usr/bin/env python
"""Quickstart: hierarchical locking on a simulated 4-node cluster.

Demonstrates the library's core loop in ~50 lines:

1. build a deterministic simulated cluster,
2. run client coroutines that take multi-granularity locks (intention
   modes on the table, real modes on entries),
3. observe that disjoint entry writers proceed in parallel while a
   table-level writer excludes everyone,
4. verify the safety invariant with a monitor.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import LockMode, SimHierarchicalCluster, Simulator, Timeout
from repro.sim import run_processes
from repro.verification.invariants import CompatibilityMonitor


def entry_writer(sim, cluster, node, entry):
    """Write one table entry: IW on the table, W on the entry."""

    client = cluster.client(node)
    yield client.acquire("db/fares", LockMode.IW)
    yield client.acquire(f"db/fares/{entry}", LockMode.W)
    print(f"t={sim.now:6.3f}s  node {node}: writing entry {entry}")
    yield Timeout(sim, 0.015)  # the critical section
    client.release(f"db/fares/{entry}", LockMode.W)
    client.release("db/fares", LockMode.IW)
    print(f"t={sim.now:6.3f}s  node {node}: done with entry {entry}")


def table_scanner(sim, cluster, node):
    """Read the whole table: a single R on the table lock."""

    client = cluster.client(node)
    yield Timeout(sim, 0.010)  # arrive a moment later
    yield client.acquire("db/fares", LockMode.R)
    print(f"t={sim.now:6.3f}s  node {node}: scanning the whole table")
    yield Timeout(sim, 0.015)
    client.release("db/fares", LockMode.R)
    print(f"t={sim.now:6.3f}s  node {node}: scan complete")


def main() -> None:
    sim = Simulator()
    monitor = CompatibilityMonitor()
    cluster = SimHierarchicalCluster(4, sim=sim, seed=7, monitor=monitor)

    run_processes(
        sim,
        [
            entry_writer(sim, cluster, node=1, entry=1),
            entry_writer(sim, cluster, node=2, entry=2),  # disjoint: parallel
            table_scanner(sim, cluster, node=3),          # waits for both IWs
        ],
    )

    monitor.assert_all_released()
    cluster.assert_quiescent_invariants()
    print(f"\nsimulated time: {sim.now:.3f}s, grants: {monitor.grants}, "
          f"wire messages: {cluster.network.messages_sent}")
    print("safety verified: all concurrent holds were pairwise compatible")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Resource-side fencing: the last inch the lock service cannot cover.

PROTOCOL.md §14 fences the *service* when a holder is partitioned away:
the isolated holder self-fences once it loses quorum contact past its
lease, the majority revokes and raises the per-lock fence floor, and
the next requester is granted safely.  But a register, file, or queue
the lock was protecting does not speak the protocol — if the oblivious
old holder keeps writing to it directly, no lock-service bookkeeping
can stop the corruption.

:class:`~repro.services.fenced.FencedResource` closes that gap on the
resource side, and this example shows the whole loop on a simulated
3-node cluster with a real (never-healing) partition:

1. node 0 takes ``ledger:W``, and writes the register under its lease's
   fencing token — accepted,
2. a partition isolates node 0; its lease expires, the majority revokes
   it and raises the fence floor; node 1 is granted ``ledger:W``,
3. the register observes the majority's fence floor, node 1's write
   (newer token) is accepted,
4. the still-partitioned node 0 — which never heard any of this —
   writes again with its old token: **rejected**, and the register's
   history shows exactly one linear, uncorrupted timeline.

Run:  python examples/fenced_register.py
"""

from __future__ import annotations

import math
from typing import List

from repro.core.modes import LockMode
from repro.faults.plan import FaultPlan, Partition
from repro.faults.recovery import RecoveryConfig
from repro.faults.simcluster import ResilientSimCluster
from repro.services.fenced import FencedResource, FencedWriteError
from repro.sim.engine import Process, Timeout

NODES = 3
PARTITION_AT = 2.0
RUN_UNTIL = 40.0


def main() -> None:
    plan = FaultPlan(
        partitions=(
            Partition(
                side_a=frozenset({0}),
                side_b=frozenset(range(1, NODES)),
                start=PARTITION_AT,
                end=math.inf,  # Never heals: node 0 stays oblivious.
            ),
        ),
        name="fenced-register-demo",
    )
    cluster = ResilientSimCluster(
        num_nodes=NODES, plan=plan, seed=7, config=RecoveryConfig()
    )
    sim = cluster.sim
    register = FencedResource("ledger-register", initial={"balance": 0})
    rejections: List[FencedWriteError] = []
    log: List[str] = []

    def minority_holder():
        client = cluster.client(0)
        yield client.acquire("ledger", LockMode.W)
        lease = cluster.managers[0].own_leases.get("ledger", 0)
        register.write(lease.token, {"balance": 100}, at=sim.now)
        log.append(
            f"t={sim.now:6.2f}  node 0 wrote balance=100 "
            f"(token {lease.token})"
        )
        # Hold across the partition without releasing; long after the
        # majority has moved on, write again with the same token.  The
        # node has no idea it was fenced — that ignorance is the attack.
        stale_token = lease.token
        yield Timeout(sim, 30.0)
        try:
            register.write(stale_token, {"balance": 999}, at=sim.now)
            log.append(f"t={sim.now:6.2f}  node 0 CORRUPTED the register!")
        except FencedWriteError as exc:
            rejections.append(exc)
            log.append(
                f"t={sim.now:6.2f}  node 0 write REJECTED: {exc}"
            )

    def majority_writer():
        yield Timeout(sim, PARTITION_AT + 1.0)
        client = cluster.client(1)
        yield client.acquire("ledger", LockMode.W)
        # The revocation that made this grant possible raised the
        # per-lock fence floor on the majority; the register learns it
        # the same way a real resource would — from its next contact
        # with a live service node.
        floor = cluster.managers[1].lockspace.automaton("ledger").fence_floor
        register.observe_floor(floor)
        lease = cluster.managers[1].own_leases.get("ledger", 1)
        register.write(lease.token, {"balance": 150}, at=sim.now)
        log.append(
            f"t={sim.now:6.2f}  node 1 granted after revocation, wrote "
            f"balance=150 (token {lease.token}, observed floor {floor})"
        )
        client.release("ledger", LockMode.W)

    Process(sim, minority_holder())
    Process(sim, majority_writer())
    sim.run(until=RUN_UNTIL)

    print("timeline:")
    for line in log:
        print(f"  {line}")
    print("register:", register.read(), register.stats())
    print("history tokens:", [record.token for record in register.history])

    assert register.writes_accepted == 2, register.stats()
    assert register.writes_rejected == 1, register.stats()
    assert len(rejections) == 1 and rejections[0].token <= register.floor
    assert register.read() == {"balance": 150}
    tokens = [record.token for record in register.history]
    assert tokens == sorted(tokens), "accepted history must be monotone"
    print("OK: the fence held — one linear history, stale writer rejected")


if __name__ == "__main__":
    main()

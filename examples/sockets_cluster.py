#!/usr/bin/env python
"""The lock service over real TCP sockets.

Runs the exact same hierarchical protocol automata as every other example
— but the nodes talk over genuine TCP connections on the loopback
interface (length-prefixed frames, one connection per ordered node pair
so the protocol's FIFO assumption holds, exactly as a LAN deployment
would be wired).

Three nodes hammer a two-level hierarchy concurrently; the safety
monitor verifies every grant, and the run reports how many frames
actually crossed the sockets.

Run:  python examples/sockets_cluster.py
"""

from __future__ import annotations

import threading
import time

from repro.core.modes import LockMode
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.runtime.tcp import TcpTransport
from repro.verification.invariants import CompatibilityMonitor

NODES = 3
OPS = 15
TIMEOUT = 30.0


def main() -> None:
    monitor = CompatibilityMonitor()
    transport = TcpTransport()
    started = time.monotonic()

    with ThreadedHierarchicalCluster(
        NODES, monitor=monitor, transport=transport
    ) as cluster:
        for node in range(NODES):
            host, port = transport.address_of(node)
            print(f"node {node} listening on {host}:{port}")

        def worker(node: int) -> None:
            client = cluster.client(node)
            for index in range(OPS):
                entry = (node + index) % NODES
                if index % 5 == 0:
                    client.acquire("db/t", LockMode.IW, timeout=TIMEOUT)
                    client.acquire(f"db/t/{entry}", LockMode.W, timeout=TIMEOUT)
                    client.release(f"db/t/{entry}", LockMode.W)
                    client.release("db/t", LockMode.IW)
                else:
                    client.acquire("db/t", LockMode.IR, timeout=TIMEOUT)
                    client.acquire(f"db/t/{entry}", LockMode.R, timeout=TIMEOUT)
                    client.release(f"db/t/{entry}", LockMode.R)
                    client.release("db/t", LockMode.IR)

        threads = [
            threading.Thread(target=worker, args=(node,))
            for node in range(NODES)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        frames = transport.messages_sent
        elapsed = time.monotonic() - started

    monitor.assert_all_released()
    total_ops = NODES * OPS
    print(f"\n{total_ops} hierarchical operations in {elapsed:.2f}s "
          f"over real TCP sockets")
    print(f"protocol frames on the wire: {frames} "
          f"({frames / total_ops:.1f} per operation)")
    print(f"grants verified by the safety monitor: {monitor.grants}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's evaluation application: a multi-airline reservation system.

Reproduces Section 4's setup end to end on a simulated cluster: every
node runs an airline's reservation front-end sharing one ticket-price
table (one lock per entry plus one table lock), with the paper's exact
parameters — 15 ms critical sections, 150 ms idle time, 150 ms network
latency, and the 80/10/4/5/1 IR/R/U/IW/W mode mix.

Prints the two quantities behind Figures 5 and 6 (message overhead and
latency factor) plus the per-type message breakdown behind Figure 7.

Run:  python examples/airline_reservation.py [num_nodes]
"""

from __future__ import annotations

import sys

from repro.experiments.common import run_hierarchical
from repro.workload.spec import WorkloadSpec


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    spec = WorkloadSpec(ops_per_node=30, seed=42)

    print(f"airline reservation workload on {num_nodes} simulated nodes")
    print(f"  table entries      : {spec.entry_count(num_nodes)}")
    print(f"  ops per node       : {spec.ops_per_node}")
    print(f"  CS / idle / latency: {spec.cs_mean * 1000:.0f} ms / "
          f"{spec.idle_mean * 1000:.0f} ms / {spec.latency_mean * 1000:.0f} ms")
    print("  mode mix           : IR 80%, R 10%, U 4%, IW 5%, W 1%")
    print()

    result = run_hierarchical(num_nodes, spec)
    metrics = result.metrics

    print(f"completed {metrics.operations} operations "
          f"({metrics.total_requests} lock requests) "
          f"in {result.sim_time:.1f}s of simulated time")
    print(f"message overhead : {result.message_overhead():.2f} "
          "messages per lock request   (paper asymptote: ~3)")
    print(f"latency factor   : {result.latency_factor():.1f} "
          "x mean network latency")
    print()
    print("per-type message rates (Figure 7):")
    for label, rate in metrics.message_overhead_by_type().items():
        print(f"  {label:<8} {rate:6.3f} per lock request")
    print()
    print("per-mode latency (x 150 ms):")
    for kind in ("IR", "R", "U", "U->W", "IW", "W"):
        summary = metrics.latency_summary(kind)
        if summary.count:
            print(f"  {kind:<5} n={summary.count:<5} "
                  f"mean={summary.mean / spec.latency_mean:7.1f}  "
                  f"p95={summary.p95 / spec.latency_mean:7.1f}")
    print("\nall safety invariants held for the entire run")


if __name__ == "__main__":
    main()

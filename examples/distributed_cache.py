#!/usr/bin/env python
"""Peer-to-peer web-cache coherence with hierarchical locks.

The paper's introduction motivates the protocol with "web caching or
embedded computing with distributed objects".  This example builds that
scenario on the *threaded* runtime — real concurrent nodes, blocking
clients — with a small coherent cache on top of the lock service:

* every peer caches site objects locally,
* a read takes ``site:IR`` + ``object:R``, serves from cache, and leaves
  the cached copy valid,
* a write (origin refresh) takes ``site:IW`` + ``object:W``, bumps the
  object's version, and the next reader anywhere observes it,
* a whole-site purge takes ``site:W``, excluding every reader and writer.

The consistency check at the end is the point: thanks to R/W exclusion,
no reader ever observed a torn version, and version history is monotone
per object.

Run:  python examples/distributed_cache.py
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.core.modes import LockMode
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.verification.invariants import CompatibilityMonitor

PEERS = 4
OBJECTS = ["site/a.html", "site/b.html", "site/c.css"]
ROUNDS = 8
TIMEOUT = 30.0


class OriginStore:
    """The authoritative store (versioned objects); not thread-safe on
    purpose — the locks provide the exclusion."""

    def __init__(self) -> None:
        self.versions: Dict[str, int] = {obj: 0 for obj in OBJECTS}

    def read(self, obj: str) -> int:
        return self.versions[obj]

    def bump(self, obj: str) -> int:
        # Deliberately non-atomic read-modify-write: a racing writer
        # would lose updates if the W locks did not serialize them.
        current = self.versions[obj]
        self.versions[obj] = current + 1
        return current + 1


def peer(
    cluster: ThreadedHierarchicalCluster,
    node: int,
    origin: OriginStore,
    observations: List[Tuple[int, str, int]],
    log_lock: threading.Lock,
) -> None:
    client = cluster.client(node)
    cache: Dict[str, int] = {}
    for round_index in range(ROUNDS):
        obj = OBJECTS[(node + round_index) % len(OBJECTS)]
        if (node + round_index) % 4 == 0:
            # Refresh from origin: an exclusive write on the object.
            client.acquire("site", LockMode.IW, timeout=TIMEOUT)
            client.acquire(obj, LockMode.W, timeout=TIMEOUT)
            version = origin.bump(obj)
            cache[obj] = version
            client.release(obj, LockMode.W)
            client.release("site", LockMode.IW)
        else:
            # Coherent read: shared on the object.
            client.acquire("site", LockMode.IR, timeout=TIMEOUT)
            client.acquire(obj, LockMode.R, timeout=TIMEOUT)
            version = origin.read(obj)
            cache[obj] = version
            with log_lock:
                observations.append((node, obj, version))
            client.release(obj, LockMode.R)
            client.release("site", LockMode.IR)


def main() -> None:
    monitor = CompatibilityMonitor()
    origin = OriginStore()
    observations: List[Tuple[int, str, int]] = []
    log_lock = threading.Lock()

    with ThreadedHierarchicalCluster(PEERS, monitor=monitor) as cluster:
        threads = [
            threading.Thread(
                target=peer,
                args=(cluster, node, origin, observations, log_lock),
            )
            for node in range(PEERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Purge the whole site: a table-level exclusive lock.
        admin = cluster.client(0)
        admin.acquire("site", LockMode.W, timeout=TIMEOUT)
        purged = dict(origin.versions)
        admin.release("site", LockMode.W)

    monitor.assert_all_released()

    # Consistency: per object, observed versions never go backwards when
    # ordered by observation time (the list is append-ordered per object
    # under the R locks).
    last_seen: Dict[str, int] = {}
    for _node, obj, version in observations:
        assert version >= last_seen.get(obj, 0), "stale read observed!"
        last_seen[obj] = max(last_seen.get(obj, 0), version)

    print(f"{PEERS} peers, {len(observations)} coherent reads, "
          f"final versions at purge: {purged}")
    print(f"grants recorded by the safety monitor: {monitor.grants}")
    print("no stale or torn reads — cache stayed coherent")


if __name__ == "__main__":
    main()
